//! Concurrency and durability tests for the *background maintenance
//! pipeline*: writers that only append while the flusher and compactor
//! threads freeze, build and merge files underneath them.
//!
//! Two obligations beyond what `concurrent.rs` already proves for the
//! inline engine:
//!
//! 1. **Prefix consistency under a live pipeline** — readers sampling at
//!    or below the writer's acked watermark must see exact committed
//!    values (and tombstones, and hole-free scans) while freezes, HFile
//!    publications and compaction view-swaps happen on other threads at
//!    their own pace.
//! 2. **No acked write is lost or reordered by backpressure** — whatever
//!    combination of throttles and stalls the writer rides through, and
//!    wherever a crash lands relative to an in-flight background flush,
//!    recovery must rebuild exactly the acknowledged prefix from the
//!    surviving WAL segments and published files.

use bytes::Bytes;
use hstore::store::{CfStore, FileIdAllocator};
use hstore::types::{KeyRange, Qualifier, RowKey};
use hstore::{MaintenanceConfig, SharedBlockCache, WalConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn store() -> CfStore {
    CfStore::new(SharedBlockCache::new(4 << 20), FileIdAllocator::new(), 1 << 10)
}

fn row(i: u64) -> RowKey {
    RowKey::from(format!("key{i:06}"))
}

fn qual() -> Qualifier {
    Qualifier::from("q")
}

fn val(i: u64) -> Bytes {
    Bytes::from(format!("value-{i:06}"))
}

/// Keys at this stride are deleted immediately after being written, so a
/// reader that sees the key acked must see the tombstone, never the
/// shadowed value.
const DELETE_STRIDE: u64 = 32;
const DELETE_PHASE: u64 = 7;

fn is_deleted(i: u64) -> bool {
    i % DELETE_STRIDE == DELETE_PHASE
}

/// Pipeline knobs that keep every background mechanism hot on a small
/// keyspace: freezes every few hundred puts, compactions as soon as four
/// files exist, two compactors racing the flusher for view swaps.
fn busy_pipeline() -> MaintenanceConfig {
    MaintenanceConfig { memstore_flush_bytes: 8 << 10, ..MaintenanceConfig::default() }
}

/// The background twin of the inline engine's stress test: one writer
/// appends keys and publishes an acked watermark with `Release` after each
/// key's operations complete — but never flushes or compacts itself; the
/// maintenance threads do all of that concurrently. Reader threads sample
/// keys at or below the watermark and assert the exact committed value (or
/// tombstone), plus windowed scans that must contain *every* acked live
/// key in the window. Any torn read, lost ack, or scan hole fails.
#[test]
fn readers_see_prefix_consistent_state_under_background_maintenance() {
    const KEYS: u64 = 6_000;
    const READERS: usize = 4;
    const SCAN_WINDOW: u64 = 24;

    let mut s = store();
    s.enable_wal(WalConfig::default());
    s.start_maintenance(busy_pipeline());
    let watermark = AtomicU64::new(0); // 0 = nothing acked; key i acks as i+1
    let done = AtomicBool::new(false);
    let (watermark, done) = (&watermark, &done);

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|idx| {
                let reader = s.reader();
                scope.spawn(move || {
                    let mut sampled = 0u64;
                    let mut x = 0x9e37_79b9u64.wrapping_add(idx as u64);
                    while !done.load(Ordering::Relaxed) || sampled < 1_000 {
                        let acked = watermark.load(Ordering::Acquire);
                        if acked == 0 {
                            std::hint::spin_loop();
                            continue;
                        }
                        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        let i = (x >> 33) % acked;
                        let got = reader.get(&row(i), &qual());
                        if is_deleted(i) {
                            assert_eq!(got, None, "key {i} acked deleted, read a value back");
                        } else {
                            assert_eq!(got, Some(val(i)), "torn/lost read of acked key {i}");
                        }
                        // Windowed scan: every acked, live key in the
                        // window must be present with its exact value —
                        // across whatever file set the compactors have
                        // swapped in this instant.
                        if sampled.is_multiple_of(64) && acked > SCAN_WINDOW {
                            let lo = (x >> 17) % (acked - SCAN_WINDOW);
                            let range = KeyRange::new(Some(row(lo)), Some(row(lo + SCAN_WINDOW)));
                            let rows = reader.scan_range(&range, usize::MAX);
                            let seen: BTreeMap<RowKey, Bytes> = rows
                                .into_iter()
                                .map(|(r, mut cells)| {
                                    assert_eq!(cells.len(), 1, "one qualifier per row");
                                    (r, cells.pop().expect("cell").1)
                                })
                                .collect();
                            for i in lo..lo + SCAN_WINDOW {
                                if is_deleted(i) {
                                    assert!(
                                        !seen.contains_key(&row(i)),
                                        "deleted key {i} resurfaced in scan"
                                    );
                                } else {
                                    assert_eq!(
                                        seen.get(&row(i)),
                                        Some(&val(i)),
                                        "acked key {i} missing or wrong in scan [{lo}, {})",
                                        lo + SCAN_WINDOW
                                    );
                                }
                            }
                        }
                        sampled += 1;
                    }
                    sampled
                })
            })
            .collect();

        for i in 0..KEYS {
            s.put(row(i), qual(), val(i));
            if is_deleted(i) {
                s.delete(row(i), qual());
            }
            watermark.store(i + 1, Ordering::Release);
        }
        done.store(true, Ordering::Relaxed);

        for h in readers {
            let sampled = h.join().expect("reader thread panicked");
            assert!(sampled >= 1_000, "reader exited after only {sampled} samples");
        }
    });

    // The pipeline, not the writer, did the maintenance — and the quiesce
    // point leaves no debt behind.
    s.drain_maintenance();
    let snap = s.maintenance_snapshot().expect("pipeline running");
    assert!(snap.flushes_completed > 0, "background flusher never ran");
    assert_eq!(snap.frozen_memstores, 0, "drain left frozen memstores behind");
    assert!(s.file_count() >= 1, "background flushes published files");

    // Post-quiesce full audit: every key, exact value.
    for i in 0..KEYS {
        let got = s.get(&row(i), &qual());
        if is_deleted(i) {
            assert_eq!(got, None, "key {i} lost its tombstone");
        } else {
            assert_eq!(got, Some(val(i)), "key {i} lost after drain");
        }
    }
}

/// One randomized acked operation the proptest writer applies.
#[derive(Debug, Clone)]
enum Op {
    /// Put `row` with a value of the given length (length variation makes
    /// freeze boundaries land at different offsets inside the op stream).
    Put(u64, u8),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12, 1u8..64).prop_map(|(r, v)| Op::Put(r, v)),
        (0u64..12, 1u8..64).prop_map(|(r, v)| Op::Put(r, v)),
        (0u64..12, 1u8..64).prop_map(|(r, v)| Op::Put(r, v)),
        (0u64..12).prop_map(Op::Delete),
    ]
}

/// Pipeline knobs tuned to make backpressure *certain* rather than rare:
/// the memstore freezes every couple of writes, only one frozen memstore
/// is tolerated (so the writer stalls on the flusher constantly), and
/// compaction triggers at two files. Stalls are bounded tightly so the
/// cases stay fast.
fn stall_prone_pipeline() -> MaintenanceConfig {
    MaintenanceConfig {
        memstore_flush_bytes: 128,
        max_frozen_memstores: 1,
        compact_min_files: 2,
        max_stall_ms: 100,
        ..MaintenanceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backpressure must never drop or reorder an acknowledged write: run
    /// a random op sequence through a store whose pipeline is configured
    /// to stall the writer on nearly every put, crash at a random point
    /// (abandoning whatever background flush is mid-flight), and recover.
    /// The recovered store must scan exactly equal to a model replaying
    /// the acknowledged prefix — the WAL segments covering un-published
    /// frozen memstores were never truncated, so nothing acked can be
    /// missing, and nothing can come back in the wrong order (a reordered
    /// replay would surface as a stale value winning a coordinate).
    #[test]
    fn crash_during_background_flush_recovers_exactly_the_acked_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        cut in 0usize..80,
    ) {
        let cut = cut.min(ops.len());
        let mut s = store();
        s.enable_wal(WalConfig::default());
        s.start_maintenance(stall_prone_pipeline());

        // Model of every *acknowledged* op, applied in ack order. Values
        // carry a global sequence number, so a reordered replay (a stale
        // value winning a coordinate) cannot masquerade as the right one.
        let mut model: BTreeMap<u64, Option<Bytes>> = BTreeMap::new();
        for (seq, op) in ops[..cut].iter().enumerate() {
            match op {
                Op::Put(r, len) => {
                    let value =
                        Bytes::from(format!("v{seq}-{}", "x".repeat(*len as usize)));
                    if s.try_put(row(*r), qual(), value.clone()).is_ok() {
                        model.insert(*r, Some(value));
                    }
                }
                Op::Delete(r) => {
                    if s.try_delete(row(*r), qual()).is_ok() {
                        model.insert(*r, None);
                    }
                }
            }
        }

        let (recovered, _report) = CfStore::recover(
            s.crash(),
            SharedBlockCache::new(4 << 20),
            FileIdAllocator::new(),
        ).expect("crash mid-pipeline must stay recoverable");

        for (r, want) in &model {
            let got = recovered.get(&row(*r), &qual());
            prop_assert_eq!(
                &got, want,
                "key {} diverged after crash at op {}", r, cut
            );
        }
        // And nothing beyond the model exists.
        let live = recovered.scan_range(&KeyRange::all(), usize::MAX);
        for (r, _) in live {
            let idx: u64 = r.to_string()[3..].parse().expect("test key shape");
            prop_assert!(
                matches!(model.get(&idx), Some(Some(_))),
                "unacked or deleted key {} resurrected by recovery", idx
            );
        }
    }
}
