//! Property tests for the zero-alloc read path: the loser-tree merge over
//! memstore + file cursors must agree, on every randomized interleaving of
//! puts, deletes (tombstones), flushes and minor compactions, with a naive
//! sort-and-dedup reference model that never merges anything.

use bytes::Bytes;
use hstore::block_cache::SharedBlockCache;
use hstore::store::{CfStore, FileIdAllocator};
use hstore::types::{CellVersion, InternalKey, KeyRange, Qualifier, RowKey};
use proptest::prelude::*;
use std::collections::BTreeMap;

const ROWS: usize = 12;
const QUALS: usize = 4;

fn row(i: usize) -> RowKey {
    RowKey::from(format!("row{i:02}"))
}

fn qual(i: usize) -> Qualifier {
    Qualifier::from(format!("q{i}").as_str())
}

/// One randomized operation against the store.
#[derive(Debug, Clone)]
enum Op {
    Put(usize, usize, u8),
    Delete(usize, usize),
    Flush,
    CompactMinor(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ROWS, 0..QUALS, any::<u8>()).prop_map(|(r, q, v)| Op::Put(r, q, v)),
        (0..ROWS, 0..QUALS).prop_map(|(r, q)| Op::Delete(r, q)),
        Just(Op::Flush),
        (2usize..4).prop_map(Op::CompactMinor),
    ]
}

/// Applies `ops`, mirroring every version (with the store-assigned
/// timestamp) into a flat reference model that knows nothing about files,
/// merging or caches.
fn apply(store: &mut CfStore, model: &mut BTreeMap<InternalKey, Option<Bytes>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(r, q, v) => {
                let value = Bytes::copy_from_slice(&[*v; 3]);
                let ts = store.put(row(*r), qual(*q), value.clone());
                model.insert(InternalKey::new(row(*r), qual(*q), ts), Some(value));
            }
            Op::Delete(r, q) => {
                let ts = store.delete(row(*r), qual(*q));
                model.insert(InternalKey::new(row(*r), qual(*q), ts), None);
            }
            Op::Flush => {
                store.flush();
            }
            Op::CompactMinor(k) => {
                // Minor compaction preserves every version, so the model
                // is untouched.
                store.compact_minor(*k);
            }
        }
    }
}

/// The rows a scan over `range` must return, computed by brute force:
/// newest version per coordinate, tombstones hide, empty rows vanish.
fn reference_scan(
    model: &BTreeMap<InternalKey, Option<Bytes>>,
    range: &KeyRange,
) -> Vec<(RowKey, Vec<(Qualifier, Bytes)>)> {
    let mut newest: BTreeMap<(RowKey, Qualifier), &Option<Bytes>> = BTreeMap::new();
    for (key, value) in model {
        // Model iterates in InternalKey order (ts DESC within a
        // coordinate), so the first version seen per coordinate is newest.
        newest.entry((key.coord.row.clone(), key.coord.qualifier.clone())).or_insert(value);
    }
    let mut rows: BTreeMap<RowKey, Vec<(Qualifier, Bytes)>> = BTreeMap::new();
    for ((r, q), value) in newest {
        if range.contains(&r) {
            if let Some(v) = value {
                rows.entry(r).or_default().push((q, v.clone()));
            }
        }
    }
    rows.into_iter().collect()
}

fn range_strategy() -> impl Strategy<Value = KeyRange> {
    (0..ROWS, 1..ROWS + 1, any::<bool>(), any::<bool>()).prop_map(|(a, span, open_s, open_e)| {
        let s = a;
        let e = (a + span).min(ROWS + 1);
        KeyRange::new(
            if open_s { None } else { Some(row(s)) },
            if open_e || e <= s { None } else { Some(row(e)) },
        )
    })
}

fn small_store() -> CfStore {
    // Tiny blocks and cache so scans cross many blocks and evict.
    CfStore::new(SharedBlockCache::new(512), FileIdAllocator::new(), 128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_matches_sort_and_dedup_reference(
        ops in prop::collection::vec(op_strategy(), 1..120),
        range in range_strategy(),
    ) {
        let mut store = small_store();
        let mut model = BTreeMap::new();
        apply(&mut store, &mut model, &ops);

        // Every surviving version, in InternalKey order (flushes and minor
        // compactions must not lose, duplicate or reorder anything).
        let exported = store.export_range(&KeyRange::all());
        let expected: Vec<CellVersion> = model
            .iter()
            .map(|(key, value)| CellVersion { key: key.clone(), value: value.clone() })
            .collect();
        prop_assert_eq!(&exported, &expected);

        // Scans agree with the brute-force model over a random sub-range.
        let got = store.scan_range(&range, usize::MAX);
        prop_assert_eq!(&got, &reference_scan(&model, &range));

        // Point gets agree on every coordinate in the domain.
        for r in 0..ROWS {
            for q in 0..QUALS {
                let want = model
                    .range(InternalKey::row_start(row(r))..)
                    .find(|(k, _)| k.coord.row == row(r) && k.coord.qualifier == qual(q))
                    .and_then(|(_, v)| v.clone());
                prop_assert_eq!(store.get(&row(r), &qual(q)), want);
            }
        }
    }

    #[test]
    fn merge_survives_major_compaction(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut store = small_store();
        let mut model = BTreeMap::new();
        apply(&mut store, &mut model, &ops);
        store.flush();
        store.compact_major();

        // Major compaction drops shadowed versions and spent tombstones,
        // but the *visible* contents must be unchanged.
        let range = KeyRange::all();
        let got = store.scan_range(&range, usize::MAX);
        prop_assert_eq!(&got, &reference_scan(&model, &range));
    }
}
