//! Identifiers and operation taxonomy shared across the cluster layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a RegionServer (and its co-located DataNode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rs-{}", self.0)
    }
}

/// Identifies a data partition (a region) in the simulation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub u64);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part-{}", self.0)
    }
}

/// The request types MeT distinguishes (§4.1: "MeT uses the total number of
/// read, write and scan requests").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point read (get).
    Read,
    /// Put or delete.
    Write,
    /// Range scan.
    Scan,
}

/// Average *storage* operations issued per client request, by kind.
///
/// For simple workloads this is a plain mix summing to 1 (e.g. YCSB
/// WorkloadA = 0.5 read + 0.5 write), but compound client requests issue
/// more than one storage op: YCSB's read-modify-write contributes one read
/// *and* one write, and a TPC-C NewOrder touches dozens of rows. Throughput
/// is always accounted in *client requests* (what YCSB and TPC-C report);
/// these factors translate a request into storage-layer load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Point reads per client request.
    pub read: f64,
    /// Writes (puts, deletes, inserts) per client request.
    pub write: f64,
    /// Scans per client request.
    pub scan: f64,
}

impl OpMix {
    /// Creates a mix, validating non-negativity and a positive total.
    pub fn new(read: f64, write: f64, scan: f64) -> Self {
        assert!(read >= 0.0 && write >= 0.0 && scan >= 0.0, "negative mix fraction");
        assert!(read + write + scan > 0.0, "op mix must be non-empty");
        OpMix { read, write, scan }
    }

    /// A pure-read mix.
    pub fn read_only() -> Self {
        OpMix::new(1.0, 0.0, 0.0)
    }

    /// A pure-write mix.
    pub fn write_only() -> Self {
        OpMix::new(0.0, 1.0, 0.0)
    }

    /// The fraction for one op kind.
    pub fn fraction(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::Read => self.read,
            OpKind::Write => self.write,
            OpKind::Scan => self.scan,
        }
    }
}

/// Per-partition cumulative request counters (simulation layer mirror of
/// `hstore::RegionCounters`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionCounters {
    /// Point reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Scans served.
    pub scans: u64,
}

impl PartitionCounters {
    /// Total requests.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_mix_validates() {
        let m = OpMix::new(0.5, 0.5, 0.0);
        assert_eq!(m.fraction(OpKind::Read), 0.5);
        assert_eq!(m.fraction(OpKind::Scan), 0.0);
    }

    #[test]
    fn op_mix_allows_compound_requests() {
        // WorkloadF: 50% read + 50% read-modify-write → 1 read + 0.5 writes
        // per client request.
        let m = OpMix::new(1.0, 0.5, 0.0);
        assert_eq!(m.fraction(OpKind::Write), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn op_mix_rejects_empty() {
        OpMix::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn counters_total() {
        let c = PartitionCounters { reads: 1, writes: 2, scans: 3 };
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn ids_display() {
        assert_eq!(ServerId(3).to_string(), "rs-3");
        assert_eq!(PartitionId(7).to_string(), "part-7");
    }
}
