//! [`ElasticCluster`] over the *functional* store: MeT managing real
//! regions.
//!
//! The simulation layer produces the paper's performance figures; this
//! adapter closes the loop the other way — the same control plane drives
//! the layer that actually stores data. Time is logical (the caller
//! advances it between operation batches), system metrics are synthesized
//! from real request rates against a nominal per-server capacity, and all
//! management actions perform real work: region moves re-home real data,
//! "restarts" rebuild a server's regions against its new configuration,
//! and major compactions rewrite real files.
//!
//! Limitations (documented, by design): there is no simulated DFS under
//! the functional layer, so locality is always reported as 1.0 and the
//! actuator's locality-triggered compactions simply never fire; restarts
//! and moves are instantaneous rather than costed.

use crate::admin::{
    AdminError, ClusterSnapshot, ElasticCluster, PartitionMetrics, ServerHealth, ServerMetrics,
};
use crate::functional::FunctionalCluster;
use crate::types::{PartitionCounters, PartitionId, ServerId};
use hstore::{RegionId, StoreConfig};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// The adapter: a functional cluster plus a logical clock and rate
/// bookkeeping.
pub struct FunctionalElastic {
    db: FunctionalCluster,
    now: SimTime,
    /// Ops/s one server handles at 100 % utilization (synthesizes CPU).
    nominal_server_ops: f64,
    last_rates: BTreeMap<ServerId, f64>,
    last_totals: BTreeMap<ServerId, u64>,
    last_advance: SimTime,
}

impl FunctionalElastic {
    /// Wraps a functional cluster. `nominal_server_ops` calibrates the
    /// synthesized utilization: a server serving that many ops/s reports
    /// 100 % CPU.
    pub fn new(db: FunctionalCluster, nominal_server_ops: f64) -> Self {
        assert!(nominal_server_ops > 0.0);
        FunctionalElastic {
            db,
            now: SimTime::ZERO,
            nominal_server_ops,
            last_rates: BTreeMap::new(),
            last_totals: BTreeMap::new(),
            last_advance: SimTime::ZERO,
        }
    }

    /// The wrapped store (run real traffic through this between
    /// [`advance`](FunctionalElastic::advance) calls).
    pub fn db(&mut self) -> &mut FunctionalCluster {
        &mut self.db
    }

    /// Read-only access to the wrapped store.
    pub fn db_ref(&self) -> &FunctionalCluster {
        &self.db
    }

    /// Advances the logical clock and refreshes the per-server request
    /// rates from the real region counters.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
        let dt = self.now.since(self.last_advance).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        self.last_advance = self.now;
        let mut totals: BTreeMap<ServerId, u64> = BTreeMap::new();
        for (rid, sid) in self.db.all_regions() {
            let ops = self.db.region_counters(rid).map(|c| c.total()).unwrap_or(0);
            *totals.entry(sid).or_insert(0) += ops;
        }
        for sid in self.db.server_ids() {
            let total = totals.get(&sid).copied().unwrap_or(0);
            let prev = self.last_totals.get(&sid).copied().unwrap_or(total);
            let rate = (total.saturating_sub(prev)) as f64 / dt;
            self.last_rates.insert(sid, rate);
        }
        self.last_totals = totals;
        self.last_rates.retain(|sid, _| self.db.server_ids().contains(sid));
    }
}

impl ElasticCluster for FunctionalElastic {
    fn now(&self) -> SimTime {
        self.now
    }

    fn snapshot(&self) -> ClusterSnapshot {
        let mut regions_by_server: BTreeMap<ServerId, Vec<PartitionId>> = BTreeMap::new();
        let mut partitions = Vec::new();
        for (rid, sid) in self.db.all_regions() {
            regions_by_server.entry(sid).or_default().push(PartitionId(rid.0));
            let c = self.db.region_counters(rid).unwrap_or_default();
            let pressure = self.db.region_maintenance_pressure(rid).unwrap_or_default();
            partitions.push(PartitionMetrics {
                partition: PartitionId(rid.0),
                table: self.db.region_table(rid).unwrap_or_default(),
                counters: PartitionCounters { reads: c.reads, writes: c.writes, scans: c.scans },
                size_bytes: self.db.region_size(rid).unwrap_or(0),
                assigned_to: Some(sid),
                // No DFS under the functional layer: always local.
                locality: 1.0,
                wal_backlog_bytes: 0,
                stall_ms: pressure.stall_ms_total(),
                frozen_memstores: pressure.frozen_memstores,
                maintenance_debt_bytes: pressure.debt_bytes,
            });
        }
        let servers = self
            .db
            .server_ids()
            .into_iter()
            .map(|sid| {
                let rps = self.last_rates.get(&sid).copied().unwrap_or(0.0);
                let cpu = (rps / self.nominal_server_ops).min(1.0);
                let (used, cap) = self.db.server_cache_usage(sid).unwrap_or((0, 1));
                ServerMetrics {
                    server: sid,
                    health: ServerHealth::Online,
                    cpu_util: cpu,
                    io_wait: cpu * 0.5,
                    mem_util: used as f64 / cap.max(1) as f64,
                    requests_per_sec: rps,
                    // The functional layer does not model queueing.
                    p99_latency_ms: 0.0,
                    locality: 1.0,
                    partitions: regions_by_server.get(&sid).cloned().unwrap_or_default(),
                    config: self.db.server_config(sid).expect("listed server has a config"),
                }
            })
            .collect();
        ClusterSnapshot { at: self.now, servers, partitions }
    }

    fn move_partition(&mut self, partition: PartitionId, to: ServerId) -> Result<(), AdminError> {
        self.db
            .move_region(RegionId(partition.0), to)
            .map_err(|_| AdminError::UnknownPartition(partition))
    }

    fn restart_server(&mut self, server: ServerId, config: StoreConfig) -> Result<(), AdminError> {
        self.db.reconfigure_server(server, config).map_err(|_| AdminError::UnknownServer(server))
    }

    fn major_compact(&mut self, partition: PartitionId) -> Result<(), AdminError> {
        self.db
            .major_compact_region(RegionId(partition.0))
            .map(|_| ())
            .map_err(|_| AdminError::UnknownPartition(partition))
    }

    fn provision_server(&mut self, config: StoreConfig) -> Result<ServerId, AdminError> {
        self.db.add_server(config).map_err(|e| AdminError::BadConfig(e.to_string()))
    }

    fn decommission_server(&mut self, server: ServerId) -> Result<(), AdminError> {
        self.db.remove_server(server).map_err(|_| AdminError::UnknownServer(server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstore::Family;

    fn loaded() -> FunctionalElastic {
        let mut db = FunctionalCluster::new(9);
        for _ in 0..2 {
            db.add_server(StoreConfig::small_for_tests()).expect("valid config");
        }
        db.create_table("t", &[Family::from("cf")], &["m".into()]).expect("fresh");
        for i in 0..200 {
            db.put("t", &"cf".into(), format!("k{i:03}").into(), "q".into(), b"v".to_vec().into())
                .expect("routed");
        }
        FunctionalElastic::new(db, 1_000.0)
    }

    #[test]
    fn snapshot_reflects_real_regions_and_rates() {
        let mut fe = loaded();
        fe.advance(SimDuration::from_secs(30));
        for i in 0..300 {
            fe.db()
                .get("t", &"cf".into(), &format!("k{:03}", i % 200).as_str().into(), &"q".into())
                .expect("routed");
        }
        fe.advance(SimDuration::from_secs(30));
        let snap = fe.snapshot();
        assert_eq!(snap.servers.len(), 2);
        assert_eq!(snap.partitions.len(), 2);
        let total_rps: f64 = snap.servers.iter().map(|s| s.requests_per_sec).sum();
        // 300 reads over 30 s ≈ 10/s plus some attribution noise; the loads
        // (200 writes) fall in the first window.
        assert!(total_rps > 5.0 && total_rps < 30.0, "rps {total_rps}");
        for s in &snap.servers {
            assert!(s.cpu_util <= 1.0);
            assert_eq!(s.health, ServerHealth::Online);
        }
    }

    #[test]
    fn management_actions_do_real_work() {
        let mut fe = loaded();
        let snap = fe.snapshot();
        let p = snap.partitions[0].partition;
        let from = snap.partitions[0].assigned_to.expect("assigned");
        let to = snap.servers.iter().find(|s| s.server != from).expect("other").server;
        fe.move_partition(p, to).expect("move");
        assert_eq!(fe.db_ref().region_server(RegionId(p.0)), Some(to));

        // Restart with a scan profile: block size changes for real.
        let mut cfg = StoreConfig::small_for_tests();
        cfg.block_size = 16 * 1024;
        fe.restart_server(to, cfg).expect("restart");
        assert_eq!(fe.db_ref().server_config(to).expect("config").block_size, 16 * 1024);
        // Data survived the rebuild.
        let got = fe.db().get("t", &"cf".into(), &"k000".into(), &"q".into()).expect("routed");
        assert!(got.is_some(), "restart lost data");

        fe.major_compact(p).expect("compact");
        let new_server = fe.provision_server(StoreConfig::small_for_tests()).expect("add");
        fe.move_partition(p, new_server).expect("move to new");
        fe.decommission_server(to).expect("remove emptied server");
        assert!(!fe.db_ref().server_ids().contains(&to));
    }

    #[test]
    fn real_counters_accumulate_for_the_control_plane() {
        let mut fe = loaded();
        // Heavy reads on region 1's key space.
        for round in 0..8 {
            for i in 0..250 {
                fe.db()
                    .get(
                        "t",
                        &"cf".into(),
                        &format!("k{:03}", i % 100).as_str().into(),
                        &"q".into(),
                    )
                    .expect("routed");
            }
            fe.advance(SimDuration::from_secs(30));
            let _ = round;
        }
        let snap = fe.snapshot();
        let hot =
            snap.partitions.iter().max_by_key(|p| p.counters.reads).expect("partitions exist");
        assert!(hot.counters.reads >= 1_000, "traffic not recorded: {:?}", hot.counters);
    }
}
