//! The tick-driven cluster simulation.
//!
//! [`SimCluster`] hosts metadata partitions on modelled RegionServers and
//! integrates throughput tick by tick (default 1 s):
//!
//! 1. Closed-loop client groups (YCSB/TPC-C thread pools) present demand;
//!    a damped fixed-point solve finds the equilibrium throughput where
//!    each group's rate equals `threads / (response time + think time)`
//!    under the shared-server queueing model of [`crate::model`].
//! 2. Achieved operations are charged to partition counters (the JMX
//!    metrics MeT reads), data grows under insert traffic, flushed files
//!    register in the simulated DFS at the hosting server (local writes),
//!    compaction backlogs drain at ≈ 1 min/GB, and cache warmth evolves.
//! 3. Management actions — moves, restarts, compactions, provisioning,
//!    decommissioning — have the availability and locality consequences
//!    the paper measures (§5, §6.2).
//!
//! The whole simulation is deterministic for a given seed — at *any* thread
//! count. The engine is *sharded*: servers are partitioned into
//! `MET_THREADS` contiguous chunks of the ID-sorted fleet (the
//! [`ShardLayout`], rebuilt deterministically whenever the fleet or the
//! thread count changes), and each shard owns persistent scratch
//! ([`ShardScratch`] — solver outputs, latency digests, compaction plans,
//! a metrics staging buffer) that stays resident on its pinned worker
//! thread across ticks ([`simcore::par::for_each_shard`]). A parallel
//! phase is then "broadcast inputs → shards run their servers → thin
//! sequential combine in shard (= server-ID) order", so every reduction
//! into shared state happens in exactly the order the sequential engine
//! uses; per-server randomness comes from forked RNG streams keyed by
//! server ID ([`simcore::SimRng::fork`]), never by thread or shard.
//! `MET_THREADS=1` (or [`SimCluster::set_threads`]`(1)`) selects the
//! legacy sequential path, and both paths produce bit-identical traces.

use crate::admin::{
    AdminError, ClusterSnapshot, ElasticCluster, PartitionMetrics, ServerHealth, ServerMetrics,
};
use crate::latency::{profile_label, LatencyMixture, LatencySummary};
use crate::model::{evaluate_server, queue_inflation, CostParams, PartitionDemand, ServerEval};
use crate::types::{OpMix, PartitionCounters, PartitionId, ServerId};
use dfs::{DataNodeId, DfsFileId, Namenode};
use hstore::StoreConfig;
use simcore::timeseries::TimeSeries;
use simcore::{FaultInjector, FaultOp, ProvisionFault, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, VecDeque};
use telemetry::{span as wallspan, MetricsBuffer, Telemetry, TelemetryEvent};

/// Fixed-point iterations per tick.
const SOLVER_ITERS: usize = 48;
/// Iterations over which the final estimate is averaged (the closed-loop
/// fixed point can settle into a small limit cycle near saturation; the
/// cycle average is the equilibrium rate).
const SOLVER_AVG_WINDOW: usize = 12;
/// Size of synthesized flush files registered in the DFS.
const FLUSH_FILE_BYTES: f64 = 64e6;
/// Size of the initial files created when a partition is first assigned.
const INITIAL_FILE_BYTES: f64 = 256e6;

/// Specification for creating a simulated partition.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Owning table name.
    pub table: String,
    /// Initial logical size in bytes.
    pub size_bytes: f64,
    /// Average record size in bytes.
    pub record_bytes: f64,
    /// Fraction of bytes forming the hot set.
    pub hot_set_fraction: f64,
    /// Fraction of accesses hitting the hot set.
    pub hot_ops_fraction: f64,
}

/// A closed-loop client population (one YCSB workload or one TPC-C
/// terminal pool).
#[derive(Debug, Clone)]
pub struct ClientGroup {
    /// Display name (e.g. "workload-a").
    pub name: String,
    /// Number of client threads (closed loop).
    pub threads: f64,
    /// Per-request client-side think/overhead time in milliseconds.
    pub think_ms: f64,
    /// Optional throughput cap, requests/s (YCSB `target`).
    pub target_rate: Option<f64>,
    /// Storage operations per client request, by kind.
    pub mix: OpMix,
    /// Where the group's point reads land: `(partition, weight)` with
    /// weights summing to 1. May be empty iff `mix.read == 0`.
    pub read_weights: Vec<(PartitionId, f64)>,
    /// Where writes land.
    pub write_weights: Vec<(PartitionId, f64)>,
    /// Where scans land.
    pub scan_weights: Vec<(PartitionId, f64)>,
    /// Average rows per scan.
    pub scan_rows: f64,
    /// Fraction of writes that are inserts (grow the logical data).
    pub insert_fraction: f64,
    /// Where inserts land: `(partition, weight)` summing to 1. Defaults to
    /// `write_weights`; differs when only some written tables grow (TPC-C
    /// inserts orders/history but updates stock/customer in place).
    pub insert_weights: Vec<(PartitionId, f64)>,
    /// Per-write CPU efficiency: 1.0 = one RPC per write (YCSB); lower
    /// when the client batches mutations (PyTPCC).
    pub write_cpu_factor: f64,
    /// Whether the group is currently generating load.
    pub active: bool,
}

impl ClientGroup {
    /// Builds a group whose reads, writes and scans all follow the same
    /// partition distribution (the YCSB case).
    #[allow(clippy::too_many_arguments)]
    pub fn with_common_weights(
        name: impl Into<String>,
        threads: f64,
        think_ms: f64,
        target_rate: Option<f64>,
        mix: OpMix,
        partitions: Vec<(PartitionId, f64)>,
        scan_rows: f64,
        insert_fraction: f64,
    ) -> Self {
        ClientGroup {
            name: name.into(),
            threads,
            think_ms,
            target_rate,
            mix,
            read_weights: partitions.clone(),
            write_weights: partitions.clone(),
            scan_weights: partitions.clone(),
            scan_rows,
            insert_fraction,
            insert_weights: partitions,
            write_cpu_factor: 1.0,
            active: true,
        }
    }

    fn validate(&self) {
        for (kind, weights, rate) in [
            ("read", &self.read_weights, self.mix.read),
            ("write", &self.write_weights, self.mix.write),
            ("scan", &self.scan_weights, self.mix.scan),
        ] {
            if rate > 0.0 {
                let sum: f64 = weights.iter().map(|(_, w)| w).sum();
                assert!(
                    (sum - 1.0).abs() < 1e-6,
                    "group '{}' {kind} weights sum to {sum}",
                    self.name
                );
            }
        }
        assert!(self.threads > 0.0);
    }

    /// Every partition the group touches, with the per-kind op rates it
    /// sends there for one request per second.
    fn per_partition_rates(&self) -> BTreeMap<PartitionId, (f64, f64, f64)> {
        let mut out: BTreeMap<PartitionId, (f64, f64, f64)> = BTreeMap::new();
        for &(p, w) in &self.read_weights {
            out.entry(p).or_default().0 += self.mix.read * w;
        }
        for &(p, w) in &self.write_weights {
            out.entry(p).or_default().1 += self.mix.write * w;
        }
        for &(p, w) in &self.scan_weights {
            out.entry(p).or_default().2 += self.mix.scan * w;
        }
        out
    }
}

#[derive(Debug)]
struct SimPartition {
    table: String,
    size_bytes: f64,
    record_bytes: f64,
    hot_set_fraction: f64,
    hot_ops_fraction: f64,
    counters: PartitionCounters,
    files: Vec<(DfsFileId, u64)>,
    unflushed_bytes: f64,
    moving_until: Option<SimTime>,
    // WAL backlog stranded by a crash: bytes that were in the memstore
    // when the host died and now exist only in the log, awaiting replay
    // on whichever server the partition is re-homed to.
    recovery_backlog: f64,
    // In-flight replay: (started, wal_bytes); resolved when the move
    // outage expires.
    recovering: Option<(SimTime, u64)>,
}

/// Lifecycle state of a simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Provisioning { until: SimTime },
    Online,
    Restarting { until: SimTime },
    Stopped,
}

#[derive(Debug)]
struct SimServer {
    config: StoreConfig,
    state: ServerState,
    warmth: f64,
    // The server's own forked RNG stream (keyed by server ID), so draws
    // made on behalf of this server are identical regardless of which
    // thread — or sibling-server ordering — performs them.
    rng: SimRng,
    compaction_backlog: VecDeque<(PartitionId, f64)>,
    // Metrics from the last completed tick.
    last_cpu: f64,
    last_io: f64,
    last_mem: f64,
    last_rps: f64,
    // Response-time distribution digest from the last completed tick.
    last_latency: LatencySummary,
    // Cumulative modelled block-cache accesses (hit fraction ≈ warmth).
    cache_hits: u64,
    cache_misses: u64,
}

impl SimServer {
    fn health(&self) -> ServerHealth {
        match self.state {
            ServerState::Online => ServerHealth::Online,
            ServerState::Restarting { .. } => ServerHealth::Restarting,
            ServerState::Provisioning { .. } => ServerHealth::Provisioning,
            ServerState::Stopped => ServerHealth::Stopped,
        }
    }
}

/// Deterministic server→shard partition for the parallel phases.
///
/// Membership is a pure function of the fleet and the thread count: the
/// ID-sorted server list (every server in `SimCluster::servers`, whatever
/// its lifecycle state — crashed servers still answer demand with the
/// unavailability penalty) is cut into `min(threads, servers)` contiguous
/// chunks via [`simcore::par::chunk_ranges`], the first `servers % shards`
/// chunks one server larger. Provision, decommission, and crash-replace
/// all change the fleet, so the layout is versioned on
/// `(next_server, servers.len(), threads)` and rebuilt lazily — two runs
/// that perform the same topology changes rebalance identically at any
/// thread count.
struct ShardLayout {
    version: (u64, usize, usize),
    /// Effective shard count: `min(threads, max(servers, 1))`.
    shards: usize,
    /// All server IDs, ascending.
    ids: Vec<ServerId>,
    /// `ids[bounds[s]..bounds[s + 1]]` is shard `s`'s membership.
    bounds: Vec<usize>,
}

impl ShardLayout {
    fn empty() -> Self {
        ShardLayout { version: (0, 0, 0), shards: 1, ids: Vec::new(), bounds: vec![0, 0] }
    }

    fn build(ids: Vec<ServerId>, threads: usize, version: (u64, usize, usize)) -> Self {
        let shards = threads.clamp(1, ids.len().max(1));
        let ranges = simcore::par::chunk_ranges(ids.len(), shards);
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        bounds.extend(ranges.iter().map(|r| r.end));
        ShardLayout { version, shards, ids, bounds }
    }

    /// The shard owning `sid`. Callers only ask about servers that exist.
    fn shard_of(&self, sid: ServerId) -> usize {
        debug_assert!(self.ids.binary_search(&sid).is_ok(), "shard_of on unknown {sid:?}");
        // The owner is the last shard whose first member is <= sid.
        (1..self.shards).take_while(|s| self.ids[self.bounds[*s]] <= sid).last().unwrap_or(0)
    }

    /// Splits an ID-ascending item list (one item per server, a subset of
    /// the fleet) into per-shard contiguous ranges, in shard order.
    fn item_ranges(&self, item_ids: impl Iterator<Item = ServerId>) -> Vec<std::ops::Range<usize>> {
        let mut counts = vec![0usize; self.shards];
        for id in item_ids {
            counts[self.shard_of(id)] += 1;
        }
        let mut out = Vec::with_capacity(self.shards);
        let mut start = 0;
        for c in counts {
            out.push(start..start + c);
            start += c;
        }
        out
    }

    /// Shard membership, for the rebalancing tests.
    fn members(&self) -> Vec<Vec<ServerId>> {
        (0..self.shards).map(|s| self.ids[self.bounds[s]..self.bounds[s + 1]].to_vec()).collect()
    }
}

/// Per-shard scratch that lives in the cluster across ticks — the "hot
/// state resident in its worker" half of the sharded engine. Shard `s` is
/// always dispatched to pinned worker `s`, so these vectors (and their
/// capacity) stay in one thread's cache; every phase clears and refills
/// them instead of allocating per server per tick.
#[derive(Default)]
struct ShardScratch {
    /// Solver fan-out: per-server evaluations, in ID order within shard.
    evals: Vec<(ServerId, ServerEval)>,
    /// Solver fan-out: flattened per-partition response times.
    responses: Vec<(PartitionId, (f64, f64, f64))>,
    /// Latency reporting pass: per-server digests.
    latencies: Vec<(ServerId, LatencySummary)>,
    /// Compaction drain plans: `(server, completed, leftover)`.
    plans: Vec<(ServerId, Vec<PartitionId>, Option<f64>)>,
    /// Cache-metrics pass: per-server utilization/cache updates.
    cache: Vec<(ServerId, f64, f64, f64, f64, u64, u64)>,
    /// Metrics staged by this shard, flushed in shard order.
    metrics: MetricsBuffer,
}

/// The simulated cluster.
pub struct SimCluster {
    params: CostParams,
    tick: SimDuration,
    now: SimTime,
    provision_delay: SimDuration,
    auto_balance_every: Option<SimDuration>,
    last_auto_balance: SimTime,
    servers: BTreeMap<ServerId, SimServer>,
    partitions: BTreeMap<PartitionId, SimPartition>,
    assignment: BTreeMap<PartitionId, ServerId>,
    groups: Vec<ClientGroup>,
    group_x: Vec<f64>,
    namenode: Namenode,
    next_partition: u64,
    next_server: u64,
    next_file: u64,
    rng: SimRng,
    // Immutable base for per-server stream forks; never drawn from
    // directly (forking from a mutable stream inside a parallel section
    // would make children depend on sibling execution order).
    rng_streams: SimRng,
    threads: usize,
    layout: ShardLayout,
    scratch: Vec<ShardScratch>,
    total_series: TimeSeries,
    group_series: BTreeMap<String, TimeSeries>,
    latency_series: BTreeMap<String, TimeSeries>,
    node_series: TimeSeries,
    auto_split_bytes: Option<f64>,
    splits: u64,
    telemetry: Telemetry,
    faults: FaultInjector,
    rerep_mb_s: f64,
    // Whether region servers keep a write-ahead log. On (the default, as
    // in HBase), a crash strands the victim's memstore bytes as WAL
    // backlog that must be replayed — at `wal_replay_mb_s` — before a
    // re-homed partition serves again. Off reproduces the pre-WAL model:
    // crashes are instantaneous hand-offs with no replay cost.
    wal_durable: bool,
    wal_replay_mb_s: f64,
}

/// One group's `(partition, (read, write, scan))` rate rows, hoisted out of
/// the throughput solve (see [`SimCluster::group_rate_tables`]).
type GroupRateTable = Vec<(PartitionId, (f64, f64, f64))>;

impl SimCluster {
    /// Creates an empty cluster with 1-second ticks, no provisioning delay
    /// and HBase's periodic count balancer disabled.
    pub fn new(params: CostParams, seed: u64) -> Self {
        let rng = SimRng::new(seed).derive("sim-cluster");
        SimCluster {
            params,
            tick: SimDuration::from_secs(1),
            now: SimTime::ZERO,
            provision_delay: SimDuration::ZERO,
            auto_balance_every: None,
            last_auto_balance: SimTime::ZERO,
            servers: BTreeMap::new(),
            partitions: BTreeMap::new(),
            assignment: BTreeMap::new(),
            groups: Vec::new(),
            group_x: Vec::new(),
            namenode: Namenode::new(2, SimRng::new(seed).derive("namenode")),
            next_partition: 1,
            next_server: 1,
            next_file: 1,
            rng,
            rng_streams: SimRng::new(seed).derive("server-streams"),
            threads: simcore::par::met_threads(),
            layout: ShardLayout::empty(),
            scratch: Vec::new(),
            total_series: TimeSeries::new("total ops/s"),
            group_series: BTreeMap::new(),
            latency_series: BTreeMap::new(),
            node_series: TimeSeries::new("online nodes"),
            auto_split_bytes: None,
            splits: 0,
            telemetry: Telemetry::disabled(),
            faults: FaultInjector::disabled(),
            rerep_mb_s: 50.0,
            wal_durable: true,
            wal_replay_mb_s: 50.0,
        }
    }

    /// Enables or disables the WAL durability model. Disabling it restores
    /// the legacy crash semantics — no replay backlog, no recovery outage —
    /// and with it byte-identical traces to builds that predate the WAL.
    pub fn set_wal_durability(&mut self, on: bool) {
        self.wal_durable = on;
    }

    /// Whether the WAL durability model is active.
    pub fn wal_durable(&self) -> bool {
        self.wal_durable
    }

    /// Sets the WAL replay rate (MB/s) a recovering partition's log is
    /// drained at when it is re-homed after a crash.
    pub fn set_wal_replay_rate_mb_s(&mut self, mb_s: f64) {
        assert!(mb_s > 0.0, "replay rate must be positive");
        self.wal_replay_mb_s = mb_s;
    }

    /// Overrides the thread count for this cluster's parallel phases.
    ///
    /// The process-wide default comes from `MET_THREADS` (see
    /// [`simcore::par::met_threads`]); this per-cluster override exists so
    /// one process can compare thread counts (the determinism tests run the
    /// same scenario at 1 and N threads). `1` selects the legacy
    /// sequential path. Values are clamped to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        // Spawn the long-lived workers up front; the layout itself is
        // versioned on the thread count and rebuilds lazily. A spawn
        // failure is survivable — dispatch degrades to inline execution —
        // so it is reported, not fatal.
        if let Err(e) = simcore::par::ensure_pool(self.threads) {
            eprintln!("warning: {e}; parallel phases will run inline");
        }
    }

    /// The thread count used by the parallel phases.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rebuilds the shard layout if the fleet or thread count changed
    /// since it was last built. `next_server` only ever grows (every
    /// provision/replace allocates a fresh ID) and removal shrinks the
    /// map, so `(next_server, servers.len(), threads)` changes whenever
    /// membership must.
    fn refresh_layout(&mut self) {
        let version = (self.next_server, self.servers.len(), self.threads);
        if self.layout.version == version {
            return;
        }
        self.layout =
            ShardLayout::build(self.servers.keys().copied().collect(), self.threads, version);
        self.scratch.resize_with(self.layout.shards, ShardScratch::default);
    }

    /// Current server→shard ownership, in shard order (for the
    /// rebalancing property tests: every server appears in exactly one
    /// shard, membership is contiguous in ID order, and two clusters that
    /// made the same topology changes agree at any thread count).
    pub fn shard_members(&mut self) -> Vec<Vec<ServerId>> {
        self.refresh_layout();
        self.layout.members()
    }

    /// Routes storage-layer telemetry (flushes, compactions, splits, cache
    /// and locality metrics) to `telemetry`; the embedded namenode reports
    /// through the same handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.namenode.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Sets the VM boot delay applied by [`ElasticCluster::provision_server`]
    /// (zero = managing the database directly, §4.3).
    pub fn set_provision_delay(&mut self, d: SimDuration) {
        self.provision_delay = d;
    }

    /// Attaches a fault injector: scheduled provision failures, slow
    /// boots, server crashes, transient management-call failures and
    /// datanode losses fire against this cluster as simulated time passes.
    /// The default is [`FaultInjector::disabled`], under which every hook
    /// is a no-op and behaviour is identical to a build without them.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Sets the background re-replication rate (MB/s) at which blocks
    /// left under-replicated by a datanode *failure* are repaired.
    pub fn set_rereplication_rate_mb_s(&mut self, mb_s: f64) {
        self.rerep_mb_s = mb_s;
    }

    /// Bytes still waiting for background DFS repair after a failure.
    pub fn under_replicated_bytes(&self) -> u64 {
        self.namenode.under_replicated_bytes()
    }

    /// Crashes a server: it stops serving instantly, its partitions stay
    /// *assigned* to it (orphaned until the control plane reassigns them)
    /// and its co-located datanode is lost, leaving blocks
    /// under-replicated until background repair catches up. Unlike
    /// [`ElasticCluster::decommission_server`] nothing is handed off
    /// gracefully. Returns false when the server is unknown or already
    /// stopped.
    pub fn crash_server(&mut self, server: ServerId) -> bool {
        let Some(s) = self.servers.get_mut(&server) else { return false };
        if s.state == ServerState::Stopped {
            return false;
        }
        s.state = ServerState::Stopped;
        s.warmth = 0.0;
        s.compaction_backlog.clear();
        s.last_cpu = 0.0;
        s.last_io = 0.0;
        s.last_mem = 0.0;
        s.last_rps = 0.0;
        s.last_latency = LatencySummary::default();
        let orphans = self.assignment.values().filter(|sid| **sid == server).count();
        // With a WAL the victim's memstore contents survive as log backlog:
        // nothing is acknowledged-then-lost, but every orphaned partition
        // owes a replay before it serves again. Without one (legacy model)
        // the unflushed bytes ride along untouched, as if crashes were
        // graceful hand-offs.
        let mut wal_backlog = 0.0;
        if self.wal_durable {
            let orphan_ids: Vec<PartitionId> = self
                .assignment
                .iter()
                .filter(|(_, sid)| **sid == server)
                .map(|(p, _)| *p)
                .collect();
            for p in orphan_ids {
                let part = self.partitions.get_mut(&p).expect("assigned partition exists");
                wal_backlog += part.unflushed_bytes;
                part.recovery_backlog += part.unflushed_bytes;
                part.unflushed_bytes = 0.0;
            }
            self.telemetry.counter_add("sim_wal_backlog_bytes_total", &[], wal_backlog as u64);
        }
        let _ = self.namenode.fail_datanode(DataNodeId(server.0));
        self.telemetry.counter_add("sim_server_crashes_total", &[], 1);
        self.telemetry.emit(
            self.now,
            TelemetryEvent::FaultInjected {
                kind: "server_crash".to_string(),
                target: Some(server.0),
                detail: if self.wal_durable {
                    format!(
                        "server {server} crashed; {orphans} partitions orphaned, \
                         {} B of WAL backlog to replay",
                        wal_backlog as u64
                    )
                } else {
                    format!("server {server} crashed; {orphans} partitions orphaned")
                },
            },
        );
        true
    }

    // Fires due scripted faults that target the substrate itself (crashes
    // and datanode losses); call-level faults are consumed inside the
    // management calls they fail.
    fn apply_injected_faults(&mut self) {
        if !self.faults.is_enabled() {
            return;
        }
        for index in self.faults.take_crashes(self.now) {
            let online = self.online_server_ids();
            if online.is_empty() {
                continue;
            }
            let victim = online[index % online.len()];
            self.crash_server(victim);
        }
        for index in self.faults.take_datanode_losses(self.now) {
            let online = self.online_server_ids();
            if online.is_empty() {
                continue;
            }
            let victim = online[index % online.len()];
            if self.namenode.fail_datanode(DataNodeId(victim.0)).is_ok() {
                self.telemetry.counter_add("sim_datanode_losses_total", &[], 1);
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::FaultInjected {
                        kind: "datanode_loss".to_string(),
                        target: Some(victim.0),
                        detail: format!("datanode dn-{} lost; blocks under-replicated", victim.0),
                    },
                );
            }
        }
        // Disk faults. A torn write or a failed fsync is fatal to the
        // store process (the storage layer refuses further writes on
        // either — see hstore's Wal), so both materialise as a crash of
        // the affected server; WAL replay then recovers everything that
        // was acknowledged before the fault.
        for bytes in self.faults.take_torn_writes(self.now) {
            let online = self.online_server_ids();
            if online.is_empty() {
                continue;
            }
            let victim = online[(bytes as usize) % online.len()];
            self.telemetry.counter_add("sim_disk_faults_total", &[("kind", "torn_write")], 1);
            self.telemetry.emit(
                self.now,
                TelemetryEvent::FaultInjected {
                    kind: "torn_write".to_string(),
                    target: Some(victim.0),
                    detail: format!(
                        "torn WAL write ({bytes} B reached disk) on server {victim}; \
                         process killed, tail truncates on replay"
                    ),
                },
            );
            self.crash_server(victim);
        }
        for _ in 0..self.faults.take_fsync_fails(self.now) {
            let online = self.online_server_ids();
            let Some(&victim) = online.first() else { continue };
            self.telemetry.counter_add("sim_disk_faults_total", &[("kind", "fsync_fail")], 1);
            self.telemetry.emit(
                self.now,
                TelemetryEvent::FaultInjected {
                    kind: "fsync_fail".to_string(),
                    target: Some(victim.0),
                    detail: format!(
                        "fsync failed on server {victim}; store aborted rather than \
                         acknowledge non-durable writes"
                    ),
                },
            );
            self.crash_server(victim);
        }
        // Bit-rot flips bits in an already-written store file. The block
        // checksum catches it on the next read; the repair is a rewrite of
        // the damaged file, charged to the owner as background compaction.
        for block in self.faults.take_bit_rots(self.now) {
            let assigned: Vec<PartitionId> = self.assignment.keys().copied().collect();
            if assigned.is_empty() {
                continue;
            }
            let p = assigned[block % assigned.len()];
            let sid = self.assignment[&p];
            let part = &self.partitions[&p];
            let Some(&(fid, fbytes)) = part.files.get(block % part.files.len().max(1)) else {
                continue;
            };
            let offset = (block as u64) * 65_536 % fbytes.max(1);
            self.telemetry.counter_add("sim_corruptions_detected_total", &[], 1);
            self.telemetry.emit(
                self.now,
                TelemetryEvent::CorruptionDetected {
                    server: sid.0,
                    file: fid.0,
                    offset,
                    detail: format!(
                        "block checksum mismatch in file {} of partition {}; \
                         rewriting the file from replicas",
                        fid.0, p.0
                    ),
                },
            );
            if let Some(server) = self.servers.get_mut(&sid) {
                // Read the replica + rewrite the file.
                server.compaction_backlog.push_back((p, 2.0 * fbytes as f64));
            }
        }
    }

    // Consumes a due transient-failure fault for a management call.
    fn injected_call_failure(&mut self, op: FaultOp, what: String) -> Option<AdminError> {
        if !self.faults.take_call_fault(self.now, op) {
            return None;
        }
        self.telemetry.counter_add("sim_call_faults_total", &[("op", op.as_str())], 1);
        self.telemetry.emit(
            self.now,
            TelemetryEvent::FaultInjected {
                kind: format!("{}_fail", op.as_str()),
                target: None,
                detail: what.clone(),
            },
        );
        Some(AdminError::TransientFailure(what))
    }

    /// Enables HBase's periodic randomized count balancer (what a cluster
    /// *not* managed by MeT runs).
    pub fn set_auto_balance(&mut self, every: Option<SimDuration>) {
        self.auto_balance_every = every;
    }

    /// The cost parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Adds a server that is online immediately (initial cluster build-out).
    pub fn add_server_immediate(&mut self, config: StoreConfig) -> ServerId {
        config.validate().expect("invalid server config");
        let id = ServerId(self.next_server);
        self.next_server += 1;
        self.servers.insert(
            id,
            SimServer {
                config,
                state: ServerState::Online,
                warmth: 0.3,
                rng: self.rng_streams.fork(&format!("server-{}", id.0)),
                compaction_backlog: VecDeque::new(),
                last_cpu: 0.0,
                last_io: 0.0,
                last_mem: 0.0,
                last_rps: 0.0,
                last_latency: LatencySummary::default(),
                cache_hits: 0,
                cache_misses: 0,
            },
        );
        self.namenode.add_datanode(DataNodeId(id.0));
        id
    }

    /// Creates a partition (unassigned).
    pub fn create_partition(&mut self, spec: PartitionSpec) -> PartitionId {
        let id = PartitionId(self.next_partition);
        self.next_partition += 1;
        self.partitions.insert(
            id,
            SimPartition {
                table: spec.table,
                size_bytes: spec.size_bytes,
                record_bytes: spec.record_bytes,
                hot_set_fraction: spec.hot_set_fraction,
                hot_ops_fraction: spec.hot_ops_fraction,
                counters: PartitionCounters::default(),
                files: Vec::new(),
                unflushed_bytes: 0.0,
                moving_until: None,
                recovery_backlog: 0.0,
                recovering: None,
            },
        );
        id
    }

    /// Assigns a partition to a server. On first assignment the partition's
    /// initial files are written at that server (100 % locality, the
    /// elasticity experiment's initial state, §6.4).
    pub fn assign_partition(&mut self, p: PartitionId, s: ServerId) -> Result<(), AdminError> {
        if !self.partitions.contains_key(&p) {
            return Err(AdminError::UnknownPartition(p));
        }
        let server = self.servers.get(&s).ok_or(AdminError::UnknownServer(s))?;
        if server.state == ServerState::Stopped {
            return Err(AdminError::ServerUnavailable(s));
        }
        self.assignment.insert(p, s);
        let part = self.partitions.get_mut(&p).expect("checked above");
        if part.files.is_empty() && part.size_bytes > 0.0 {
            let mut remaining = part.size_bytes;
            while remaining > 0.0 {
                let sz = remaining.min(INITIAL_FILE_BYTES);
                let fid = DfsFileId(self.next_file);
                self.next_file += 1;
                self.namenode
                    .create_file(fid, sz as u64, DataNodeId(s.0))
                    .expect("datanode registered with server");
                part.files.push((fid, sz as u64));
                remaining -= sz;
            }
        }
        Ok(())
    }

    /// Randomized even-count placement of all unassigned partitions — the
    /// out-of-the-box HBase balancer behaviour (§2.1).
    pub fn random_balance_unassigned(&mut self) {
        let unassigned: Vec<PartitionId> =
            self.partitions.keys().filter(|p| !self.assignment.contains_key(p)).copied().collect();
        let mut online = self.online_server_ids();
        assert!(!online.is_empty(), "no online servers to balance onto");
        self.rng.shuffle(&mut online);
        let mut order = unassigned;
        self.rng.shuffle(&mut order);
        // Round-robin over the shuffled server order, starting from the
        // least-loaded servers so counts stay even.
        let mut counts: BTreeMap<ServerId, usize> = online.iter().map(|s| (*s, 0)).collect();
        for (pid, sid) in self.assignment.iter() {
            let _ = pid;
            if let Some(c) = counts.get_mut(sid) {
                *c += 1;
            }
        }
        for p in order {
            let target = *counts
                .iter()
                .min_by_key(|(sid, c)| (**c, sid.0))
                .map(|(sid, _)| sid)
                .expect("non-empty online set");
            self.assign_partition(p, target).expect("target is online");
            *counts.get_mut(&target).expect("counted") += 1;
        }
    }

    /// One round of HBase's count balancer: moves random partitions from
    /// over-count servers to under-count servers until counts are even.
    /// Returns the number of moves performed.
    pub fn rebalance_counts(&mut self) -> usize {
        let online = self.online_server_ids();
        if online.is_empty() {
            return 0;
        }
        let mut by_server: BTreeMap<ServerId, Vec<PartitionId>> =
            online.iter().map(|s| (*s, Vec::new())).collect();
        for (p, s) in &self.assignment {
            if let Some(v) = by_server.get_mut(s) {
                v.push(*p);
            }
        }
        let total: usize = by_server.values().map(|v| v.len()).sum();
        let floor = total / online.len();
        let ceil = total.div_ceil(online.len());
        let mut moves = 0;
        loop {
            let donor = by_server.iter().find(|(_, v)| v.len() > ceil).map(|(s, _)| *s);
            let donor = match donor {
                Some(d) => d,
                None => {
                    // Donors above floor feed any server below floor.
                    let Some(recipient) =
                        by_server.iter().find(|(_, v)| v.len() < floor).map(|(s, _)| *s)
                    else {
                        break;
                    };
                    let Some(donor) =
                        by_server.iter().find(|(_, v)| v.len() > floor).map(|(s, _)| *s)
                    else {
                        break;
                    };
                    let list = by_server.get_mut(&donor).expect("donor exists");
                    let idx = self.rng.next_below(list.len() as u64) as usize;
                    let p = list.swap_remove(idx);
                    self.do_move(p, recipient);
                    by_server.get_mut(&recipient).expect("recipient exists").push(p);
                    moves += 1;
                    continue;
                }
            };
            let recipient = *by_server
                .iter()
                .min_by_key(|(s, v)| (v.len(), s.0))
                .map(|(s, _)| s)
                .expect("non-empty");
            if by_server[&recipient].len() >= ceil {
                break;
            }
            let list = by_server.get_mut(&donor).expect("donor exists");
            let idx = self.rng.next_below(list.len() as u64) as usize;
            let p = list.swap_remove(idx);
            self.do_move(p, recipient);
            by_server.get_mut(&recipient).expect("recipient exists").push(p);
            moves += 1;
        }
        moves
    }

    fn do_move(&mut self, p: PartitionId, to: ServerId) {
        self.assignment.insert(p, to);
        let mut outage = SimDuration::from_secs_f64(self.params.move_outage_s);
        let part = self.partitions.get_mut(&p).expect("moving unknown partition");
        // A crash-orphaned partition pays for WAL replay on top of the
        // close/open outage; the replayed records land back in the new
        // host's memstore and flush through the normal path.
        let mut replay: Option<u64> = None;
        if self.wal_durable && part.recovery_backlog > 0.0 {
            let wal_bytes = part.recovery_backlog as u64;
            outage = outage
                + SimDuration::from_secs_f64(part.recovery_backlog / (self.wal_replay_mb_s * 1e6));
            part.unflushed_bytes += part.recovery_backlog;
            part.recovery_backlog = 0.0;
            part.recovering = Some((self.now, wal_bytes));
            replay = Some(wal_bytes);
        }
        part.moving_until = Some(self.now + outage);
        if let Some(wal_bytes) = replay {
            self.telemetry.counter_add("sim_wal_replays_total", &[], 1);
            self.telemetry.counter_add("sim_wal_replayed_bytes_total", &[], wal_bytes);
            self.telemetry.emit(
                self.now,
                TelemetryEvent::RecoveryStarted { server: to.0, region: p.0, wal_bytes },
            );
        }
    }

    /// Registers a client group.
    pub fn add_group(&mut self, group: ClientGroup) {
        group.validate();
        self.group_series.insert(group.name.clone(), TimeSeries::new(group.name.clone()));
        self.latency_series
            .insert(group.name.clone(), TimeSeries::new(format!("{} latency (ms)", group.name)));
        self.groups.push(group);
        self.group_x.push(0.0);
    }

    /// Enables automatic region splitting: partitions exceeding
    /// `bytes` split in two (HBase's automatic partitioning, §2.1). Client
    /// weights rebalance onto the daughters transparently, as HBase's
    /// client metadata refresh does.
    pub fn set_auto_split(&mut self, bytes: Option<f64>) {
        self.auto_split_bytes = bytes;
    }

    /// Number of automatic splits performed.
    pub fn split_count(&self) -> u64 {
        self.splits
    }

    /// Per-group mean request latency series (milliseconds per client
    /// request, one point per tick) — what YCSB reports alongside
    /// throughput.
    pub fn group_latency_ms(&self, name: &str) -> Option<&TimeSeries> {
        self.latency_series.get(name)
    }

    /// Activates or deactivates a group by name (workload switch-offs in
    /// the elasticity experiment's second phase, §6.4).
    pub fn set_group_active(&mut self, name: &str, active: bool) {
        for g in &mut self.groups {
            if g.name == name {
                g.active = active;
            }
        }
    }

    /// Ids of every known server in any lifecycle state (including
    /// provisioning, restarting, and stopped), ascending. This is the
    /// membership the shard layout partitions — stopped servers stay
    /// owned by a shard until they are removed from the map.
    pub fn all_server_ids(&self) -> Vec<ServerId> {
        self.servers.keys().copied().collect()
    }

    /// Ids of currently online servers.
    pub fn online_server_ids(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.state == ServerState::Online)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Tick length.
    pub fn tick_len(&self) -> SimDuration {
        self.tick
    }

    /// Total-throughput series (one point per tick, ops/s).
    pub fn total_series(&self) -> &TimeSeries {
        &self.total_series
    }

    /// Per-group throughput series.
    pub fn group_throughput(&self, name: &str) -> Option<&TimeSeries> {
        self.group_series.get(name)
    }

    /// Online-node-count series (one point per tick).
    pub fn node_series(&self) -> &TimeSeries {
        &self.node_series
    }

    /// The server hosting a partition, if assigned.
    pub fn partition_server(&self, p: PartitionId) -> Option<ServerId> {
        self.assignment.get(&p).copied()
    }

    /// Locality index of a partition on its current server.
    pub fn partition_locality(&self, p: PartitionId) -> f64 {
        let Some(sid) = self.assignment.get(&p) else { return 0.0 };
        let part = &self.partitions[&p];
        self.namenode.locality_index(DataNodeId(sid.0), &part.files)
    }

    /// Advances the simulation by `n` ticks.
    pub fn run_ticks(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advances one tick.
    ///
    /// Wall-clock profiling spans (`sim.*`, gated behind `MET_PROFILE`)
    /// bracket each phase; they read nothing but the real clock and write
    /// nothing but the profiler's own buffers, so the simulation below is
    /// byte-identical with profiling on or off.
    pub fn step(&mut self) {
        let _tick_span = wallspan::span("sim.tick");
        let dt = self.tick.as_secs_f64();
        self.now += self.tick;

        // 0. Scripted faults fire first: a crash at tick t is visible to
        // everything else that happens at t.
        {
            let _s = wallspan::span("sim.faults");
            self.apply_injected_faults();
            self.namenode.rereplicate_step((self.rerep_mb_s * 1e6 * dt) as u64);
        }

        let lifecycle_span = wallspan::span("sim.lifecycle");
        // 1. Server lifecycle transitions.
        for (sid, server) in self.servers.iter_mut() {
            match server.state {
                ServerState::Provisioning { until } if until <= self.now => {
                    server.state = ServerState::Online;
                    server.warmth = 0.05;
                    // A fresh node joins with an empty cache: report it so
                    // the trace shows why its early latencies are cold.
                    self.telemetry.emit(
                        self.now,
                        TelemetryEvent::CacheReport {
                            server: sid.0,
                            hits: server.cache_hits,
                            misses: server.cache_misses,
                            evictions: 0,
                        },
                    );
                }
                ServerState::Restarting { until } if until <= self.now => {
                    server.state = ServerState::Online;
                    // Post-restart cache is cold but refills its hottest
                    // fraction quickly (first touches admit immediately).
                    server.warmth = 0.25;
                    self.telemetry.emit(
                        self.now,
                        TelemetryEvent::CacheReport {
                            server: sid.0,
                            hits: server.cache_hits,
                            misses: server.cache_misses,
                            evictions: 0,
                        },
                    );
                }
                _ => {}
            }
        }
        // Clear completed moves; a move that carried WAL replay reports
        // the recovery as done (collect first — emitting borrows `self`).
        let mut recoveries: Vec<(PartitionId, SimTime, u64)> = Vec::new();
        for (pid, part) in self.partitions.iter_mut() {
            if let Some(t) = part.moving_until {
                if t <= self.now {
                    part.moving_until = None;
                    if let Some((started, wal_bytes)) = part.recovering.take() {
                        recoveries.push((*pid, started, wal_bytes));
                    }
                }
            }
        }
        for (pid, started, wal_bytes) in recoveries {
            let server = self.assignment.get(&pid).map(|s| s.0).unwrap_or(0);
            self.telemetry.emit(
                self.now,
                TelemetryEvent::RecoveryCompleted {
                    server,
                    region: pid.0,
                    wal_bytes,
                    duration_ms: self.now.since(started).as_millis(),
                },
            );
        }

        // 2. Periodic HBase count balancer, when enabled.
        if let Some(every) = self.auto_balance_every {
            if self.now.since(self.last_auto_balance) >= every {
                self.last_auto_balance = self.now;
                self.rebalance_counts();
            }
        }

        drop(lifecycle_span);

        // 3. Solve the closed-loop equilibrium.
        let solution = self.solve_equilibrium();

        let integrate_span = wallspan::span("sim.integrate");
        // 4. Integrate: counters, growth, flushes, warmth, compactions.
        let mut per_partition: BTreeMap<PartitionId, (f64, f64, f64, f64)> = BTreeMap::new();
        for (gi, g) in self.groups.iter().enumerate() {
            if !g.active {
                continue;
            }
            let x = solution.group_x[gi];
            for (p, (r, w, s)) in g.per_partition_rates() {
                let e = per_partition.entry(p).or_insert((0.0, 0.0, 0.0, 0.0));
                e.0 += x * r;
                e.1 += x * w;
                e.2 += x * s;
            }
            // Data growth follows the insert distribution, not the whole
            // write distribution.
            let insert_rate = x * g.mix.write * g.insert_fraction;
            for &(p, w) in &g.insert_weights {
                per_partition.entry(p).or_insert((0.0, 0.0, 0.0, 0.0)).3 += insert_rate * w;
            }
        }
        let mut new_files: Vec<(PartitionId, ServerId, f64)> = Vec::new();
        for (p, (r, w, s, ins)) in &per_partition {
            let part = self.partitions.get_mut(p).expect("demand for unknown partition");
            part.counters.reads += (r * dt).round() as u64;
            part.counters.writes += (w * dt).round() as u64;
            part.counters.scans += (s * dt).round() as u64;
            part.size_bytes += ins * part.record_bytes * dt;
            part.unflushed_bytes += w * part.record_bytes * dt;
            if part.unflushed_bytes >= FLUSH_FILE_BYTES {
                if let Some(sid) = self.assignment.get(p) {
                    new_files.push((*p, *sid, part.unflushed_bytes));
                    part.unflushed_bytes = 0.0;
                }
            }
        }
        for (p, sid, bytes) in new_files {
            let fid = DfsFileId(self.next_file);
            self.next_file += 1;
            if self.namenode.create_file(fid, bytes as u64, DataNodeId(sid.0)).is_ok() {
                self.partitions
                    .get_mut(&p)
                    .expect("flushed unknown partition")
                    .files
                    .push((fid, bytes as u64));
                self.telemetry.counter_add("sim_memstore_flushes_total", &[], 1);
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::MemstoreFlush {
                        server: sid.0,
                        region: p.0,
                        bytes: bytes as u64,
                    },
                );
            }
        }

        drop(integrate_span);

        // 5. Compaction backlog drain and completion. Drain plans are
        // computed in parallel from read-only server state, then applied
        // sequentially in server-ID order so warmth decay and the DFS
        // rewrites in finish_compaction happen exactly as the sequential
        // engine performs them.
        let compact_plan_span = wallspan::span("sim.compaction.plan");
        let compact_step = self.params.compact_mb_s * 1e6 * dt;
        let threads = self.threads;
        self.refresh_layout();
        let shards = self.layout.shards;
        {
            let drain_entries: Vec<(&ServerId, &SimServer)> = self.servers.iter().collect();
            let ranges = self.layout.item_ranges(drain_entries.iter().map(|(sid, _)| **sid));
            let entries_ref = &drain_entries;
            let ranges_ref = &ranges;
            simcore::par::for_each_shard(&mut self.scratch[..shards], |shard, sc| {
                sc.plans.clear();
                for (sid, server) in &entries_ref[ranges_ref[shard].clone()] {
                    if server.state != ServerState::Online {
                        continue;
                    }
                    let mut budget = compact_step;
                    let mut completed: Vec<PartitionId> = Vec::new();
                    let mut leftover = None;
                    for &(p, amount) in &server.compaction_backlog {
                        if budget <= 0.0 {
                            break;
                        }
                        if amount <= budget {
                            budget -= amount;
                            completed.push(p);
                        } else {
                            leftover = Some(amount - budget);
                            break;
                        }
                    }
                    if !completed.is_empty() || leftover.is_some() {
                        sc.plans.push((**sid, completed, leftover));
                    }
                }
            });
        }
        drop(compact_plan_span);
        let compact_apply_span = wallspan::span("sim.compaction.apply");
        // Apply in shard order = server-ID order, exactly as the
        // sequential engine drains.
        let mut plans: Vec<(ServerId, Vec<PartitionId>, Option<f64>)> = Vec::new();
        for sc in &mut self.scratch[..shards] {
            plans.append(&mut sc.plans);
        }
        for (sid, completed, leftover) in plans {
            let server = self.servers.get_mut(&sid).expect("iterating known ids");
            for _ in &completed {
                server.compaction_backlog.pop_front();
                // Compaction invalidates cached blocks of the rewritten
                // files; the cache partially cools.
                server.warmth *= 0.85;
            }
            if let Some(left) = leftover {
                server.compaction_backlog.front_mut().expect("leftover implies a front").1 = left;
            }
            for p in completed {
                self.finish_compaction(p, sid);
            }
        }

        drop(compact_apply_span);

        // 5b. Automatic region splits (§2.1): a partition that outgrew the
        // configured region size splits into two daughters on the same
        // server; client request weights follow the key-space halves.
        if let Some(limit) = self.auto_split_bytes {
            let oversized: Vec<PartitionId> = self
                .partitions
                .iter()
                .filter(|(_, p)| p.size_bytes > limit)
                .map(|(id, _)| *id)
                .collect();
            for p in oversized {
                self.split_partition(p);
            }
        }

        // 6. Warmth evolution (each server only touches itself).
        let warmth_span = wallspan::span("sim.warmth");
        let warmup_s = self.params.warmup_s;
        let mut warm_refs: Vec<&mut SimServer> = self.servers.values_mut().collect();
        simcore::par::for_each_mut(threads, &mut warm_refs, |server| {
            if server.state == ServerState::Online {
                server.warmth += (1.0 - server.warmth) * dt / warmup_s;
                server.warmth = server.warmth.clamp(0.0, 1.0);
            }
        });
        drop(warmth_span);

        // 7. Record series and stash metrics.
        let series_span = wallspan::span("sim.series");
        let total: f64 = solution
            .group_x
            .iter()
            .zip(&self.groups)
            .filter(|(_, g)| g.active)
            .map(|(x, _)| *x)
            .sum();
        self.total_series.record(self.now, total);
        for (gi, g) in self.groups.iter().enumerate() {
            let x = if g.active { solution.group_x[gi] } else { 0.0 };
            self.group_series
                .get_mut(&g.name)
                .expect("series created with group")
                .record(self.now, x);
            if g.active {
                self.latency_series
                    .get_mut(&g.name)
                    .expect("series created with group")
                    .record(self.now, solution.group_r_ms[gi]);
            }
        }
        self.node_series.record(self.now, self.online_server_ids().len() as f64);
        // Servers without any demand this tick idle at zero — otherwise a
        // server whose groups went quiet would report stale utilization
        // forever.
        for server in self.servers.values_mut() {
            if server.state == ServerState::Online {
                server.last_cpu = 0.0;
                server.last_io = 0.0;
                server.last_mem = 0.0;
                server.last_rps = 0.0;
                server.last_latency = LatencySummary::default();
            }
        }
        // Latency digests land on every online server with demand;
        // offline servers keep reporting zero (their clients' penalty is
        // already in the group response times).
        for (sid, lat) in &solution.server_latency {
            if let Some(server) = self.servers.get_mut(sid) {
                if server.state == ServerState::Online {
                    server.last_latency = *lat;
                }
            }
        }
        drop(series_span);
        // Cache metrics: per-server updates are computed in parallel into
        // per-shard buffers, then applied and flushed in server-ID order
        // under a single registry lock (no per-gauge mutex contention).
        let _cache_span = wallspan::span("sim.cache_metrics");
        let evals: Vec<(ServerId, ServerEval)> = solution.server_evals.into_iter().collect();
        let telemetry_on = self.telemetry.is_enabled();
        {
            let servers_ref = &self.servers;
            let latency_ref = &solution.server_latency;
            let ranges = self.layout.item_ranges(evals.iter().map(|(sid, _)| *sid));
            let evals_ref = &evals;
            let ranges_ref = &ranges;
            simcore::par::for_each_shard(&mut self.scratch[..shards], |shard, sc| {
                sc.cache.clear();
                sc.metrics.clear();
                for (sid, eval) in &evals_ref[ranges_ref[shard].clone()] {
                    let server = &servers_ref[sid];
                    // Modelled block-cache traffic: the warmth fraction of
                    // this tick's requests hit the cache, the remainder go
                    // to disk.
                    let served = (eval.total_rps * dt).round().max(0.0) as u64;
                    let hits = ((served as f64) * server.warmth).round() as u64;
                    let cache_hits = server.cache_hits + hits.min(served);
                    let cache_misses = server.cache_misses + served.saturating_sub(hits);
                    let buf = &mut sc.metrics;
                    if telemetry_on {
                        let label = sid.0.to_string();
                        let labels = [("server", label.as_str())];
                        buf.gauge_set("sim_block_cache_hits", &labels, cache_hits as f64);
                        buf.gauge_set("sim_block_cache_misses", &labels, cache_misses as f64);
                        let total = cache_hits + cache_misses;
                        if total > 0 {
                            buf.gauge_set(
                                "sim_block_cache_hit_ratio",
                                &labels,
                                cache_hits as f64 / total as f64,
                            );
                        }
                        // Latency digests: current quantiles as gauges, and
                        // per-tick observations into per-server /
                        // per-profile histograms whose summaries give the
                        // run's p50/p95/p99.
                        if let Some(lat) = latency_ref.get(sid) {
                            buf.gauge_set("sim_latency_p50_ms", &labels, lat.p50_ms);
                            buf.gauge_set("sim_latency_p95_ms", &labels, lat.p95_ms);
                            buf.gauge_set("sim_latency_p99_ms", &labels, lat.p99_ms);
                            buf.observe("sim_server_latency_ms", &labels, lat.mean_ms);
                            buf.observe("sim_server_p99_ms", &labels, lat.p99_ms);
                            let profile = [("profile", profile_label(&server.config))];
                            buf.observe("sim_profile_p99_ms", &profile, lat.p99_ms);
                        }
                    }
                    sc.cache.push((
                        *sid,
                        eval.rho_cpu.min(1.0),
                        eval.rho_disk.min(1.0),
                        eval.mem_util,
                        eval.total_rps,
                        cache_hits,
                        cache_misses,
                    ));
                }
            });
        }
        // Combine in shard order (= server-ID order): apply the per-server
        // fields, then flush each shard's staged metrics — the registry
        // sees the same operation sequence the sequential engine produces.
        for sc in &mut self.scratch[..shards] {
            for (sid, cpu, io, mem, rps, cache_hits, cache_misses) in sc.cache.drain(..) {
                let server = self.servers.get_mut(&sid).expect("eval for unknown server");
                server.last_cpu = cpu;
                server.last_io = io;
                server.last_mem = mem;
                server.last_rps = rps;
                server.cache_hits = cache_hits;
                server.cache_misses = cache_misses;
            }
        }
        for sc in &self.scratch[..shards] {
            if !sc.metrics.is_empty() {
                self.telemetry.flush_buffers(std::slice::from_ref(&sc.metrics));
            }
        }
    }

    fn finish_compaction(&mut self, p: PartitionId, sid: ServerId) {
        let Some(part) = self.partitions.get_mut(&p) else { return };
        // Replace all files with one local rewrite.
        for (fid, _) in part.files.drain(..) {
            let _ = self.namenode.delete_file(fid);
        }
        let fid = DfsFileId(self.next_file);
        self.next_file += 1;
        let size = part.size_bytes.max(1.0) as u64;
        if self.namenode.create_file(fid, size, DataNodeId(sid.0)).is_ok() {
            part.files.push((fid, size));
        }
        part.unflushed_bytes = 0.0;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("sim_compactions_total", &[], 1);
            self.telemetry
                .emit(self.now, TelemetryEvent::CompactionDone { server: sid.0, bytes: size });
            // A local rewrite is exactly what restores data locality; sample
            // the post-compaction index so traces show the recovery.
            let files = &self.partitions.get(&p).expect("compacted unknown partition").files;
            let value = self.namenode.locality_index(DataNodeId(sid.0), files);
            self.telemetry.emit(self.now, TelemetryEvent::LocalitySample { server: sid.0, value });
        }
    }

    /// Splits a partition in two (the daughter takes half the data, files
    /// and request weight), leaving both on the current server. Returns the
    /// daughter's id, or `None` if the partition is unknown or unassigned.
    pub fn split_partition(&mut self, p: PartitionId) -> Option<PartitionId> {
        let sid = *self.assignment.get(&p)?;
        let q = PartitionId(self.next_partition);
        {
            let part = self.partitions.get_mut(&p)?;
            part.size_bytes /= 2.0;
            part.unflushed_bytes /= 2.0;
            part.counters = PartitionCounters {
                reads: part.counters.reads / 2,
                writes: part.counters.writes / 2,
                scans: part.counters.scans / 2,
            };
            // Alternate the file manifest between the halves (each HFile's
            // key range lands mostly on one side of the split point).
            let mut keep = Vec::new();
            let mut give = Vec::new();
            for (i, f) in part.files.drain(..).enumerate() {
                if i % 2 == 0 {
                    keep.push(f);
                } else {
                    give.push(f);
                }
            }
            part.files = keep;
            let daughter = SimPartition {
                table: part.table.clone(),
                size_bytes: part.size_bytes,
                record_bytes: part.record_bytes,
                hot_set_fraction: part.hot_set_fraction,
                hot_ops_fraction: part.hot_ops_fraction,
                counters: part.counters,
                files: give,
                unflushed_bytes: part.unflushed_bytes,
                moving_until: None,
                recovery_backlog: 0.0,
                recovering: None,
            };
            self.next_partition += 1;
            self.partitions.insert(q, daughter);
        }
        self.assignment.insert(q, sid);
        // Clients re-learn the region map: each weight on `p` halves, with
        // the other half going to the daughter.
        for g in &mut self.groups {
            for weights in [
                &mut g.read_weights,
                &mut g.write_weights,
                &mut g.scan_weights,
                &mut g.insert_weights,
            ] {
                let mut add = 0.0;
                for (pid, w) in weights.iter_mut() {
                    if *pid == p {
                        *w /= 2.0;
                        add += *w;
                    }
                }
                if add > 0.0 {
                    weights.push((q, add));
                }
            }
        }
        self.splits += 1;
        self.telemetry.counter_add("sim_region_splits_total", &[], 1);
        self.telemetry.emit(
            self.now,
            TelemetryEvent::RegionSplit { server: sid.0, region: p.0, new_region: q.0 },
        );
        Some(q)
    }

    /// Locality index of every assigned partition on its current server,
    /// in partition-ID order. Computed once per tick (the namenode does
    /// not change during the equilibrium solve) across the thread pool —
    /// the per-datanode locality accounting is read-only and
    /// embarrassingly parallel.
    fn partition_localities(&self) -> BTreeMap<PartitionId, f64> {
        let queries: Vec<(DataNodeId, &[(DfsFileId, u64)])> = self
            .assignment
            .iter()
            .map(|(p, sid)| (DataNodeId(sid.0), self.partitions[p].files.as_slice()))
            .collect();
        let values = self.namenode.locality_indices(self.threads, &queries);
        self.assignment.keys().copied().zip(values).collect()
    }

    /// Per-group partition rate tables, computed once per tick: they
    /// depend only on the group mixes and weights, not on the throughput
    /// estimate, so hoisting them out of the 48-iteration solve changes
    /// nothing arithmetically (the same `(p, rates)` sequence is folded in
    /// the same order).
    fn group_rate_tables(&self) -> Vec<GroupRateTable> {
        self.groups
            .iter()
            .map(
                |g| {
                    if g.active {
                        g.per_partition_rates().into_iter().collect()
                    } else {
                        Vec::new()
                    }
                },
            )
            .collect()
    }

    /// Builds the per-server demand vectors for a given group-throughput
    /// estimate. Returns `(server → (partition list, demand list))` plus the
    /// set of unavailable partitions. `locality` is the per-tick table from
    /// [`SimCluster::partition_localities`].
    fn build_demands(
        &self,
        group_x: &[f64],
        locality: &BTreeMap<PartitionId, f64>,
        group_rates: &[GroupRateTable],
    ) -> BTreeMap<ServerId, Vec<PartitionDemand>> {
        let mut rates: BTreeMap<PartitionId, (f64, f64, f64, f64, f64)> = BTreeMap::new();
        for (gi, g) in self.groups.iter().enumerate() {
            if !g.active {
                continue;
            }
            let x = group_x[gi];
            for &(p, (r, w, s)) in &group_rates[gi] {
                let e = rates.entry(p).or_insert((0.0, 0.0, 0.0, 0.0, 1.0));
                e.0 += x * r;
                let write_rate = x * w;
                // Write-rate-weighted batching factor across groups.
                e.4 = if e.1 + write_rate > 0.0 {
                    (e.4 * e.1 + g.write_cpu_factor * write_rate) / (e.1 + write_rate)
                } else {
                    e.4
                };
                e.1 += write_rate;
                let scan_rate = x * s;
                // Weighted average scan length across groups.
                e.3 = if e.2 + scan_rate > 0.0 {
                    (e.3 * e.2 + g.scan_rows * scan_rate) / (e.2 + scan_rate)
                } else {
                    e.3
                };
                e.2 += scan_rate;
            }
        }
        let mut by_server: BTreeMap<ServerId, Vec<PartitionDemand>> = BTreeMap::new();
        for (p, (r, w, s, rows, wf)) in rates {
            let Some(sid) = self.assignment.get(&p) else { continue };
            let part = &self.partitions[&p];
            let locality =
                locality.get(&p).copied().expect("locality precomputed for assigned partition");
            let unavailable = part.moving_until.map(|t| t > self.now).unwrap_or(false);
            by_server.entry(*sid).or_default().push(PartitionDemand {
                partition: p,
                read_rps: r,
                write_rps: w,
                scan_rps: s,
                scan_rows: rows.max(1.0),
                record_bytes: part.record_bytes,
                data_bytes: part.size_bytes,
                hot_set_fraction: part.hot_set_fraction,
                hot_ops_fraction: part.hot_ops_fraction,
                locality,
                unavailable,
                write_cpu_factor: wf,
            });
        }
        by_server
    }

    /// Damped fixed-point solve of the closed-loop equilibrium.
    fn solve_equilibrium(&mut self) -> Equilibrium {
        let _solver_span = wallspan::span("sim.solver");
        self.refresh_layout();
        let n = self.groups.len();
        let mut x: Vec<f64> = self
            .group_x
            .iter()
            .zip(&self.groups)
            .map(|(prev, g)| {
                if !g.active {
                    0.0
                } else if *prev > 0.0 {
                    *prev
                } else {
                    g.threads * 50.0 // warm start guess
                }
            })
            .collect();

        let mut server_evals: BTreeMap<ServerId, ServerEval> = BTreeMap::new();
        let mut avg: Vec<f64> = vec![0.0; x.len()];
        let mut group_r_ms: Vec<f64> = vec![0.0; x.len()];
        // Locality does not change during the solve: compute the table once
        // (in parallel) instead of per iteration.
        let localities = {
            let _s = wallspan::span("sim.locality");
            self.partition_localities()
        };
        let group_rates = self.group_rate_tables();
        let shards = self.layout.shards;
        let mut response: BTreeMap<PartitionId, (f64, f64, f64)> = BTreeMap::new();
        for iter in 0..SOLVER_ITERS {
            // Heavier damping once roughly settled, to kill limit cycles.
            let damping = if iter < SOLVER_ITERS / 2 { 0.35 } else { 0.15 };
            let demands = {
                let _s = wallspan::span("solver.demands");
                self.build_demands(&x, &localities, &group_rates)
            };
            server_evals.clear();
            // Evaluate each server under the current demand — independent
            // per server. Each shard runs its ID-contiguous slice of the
            // demand list into its resident scratch; the combine below
            // walks shards in order, which *is* server-ID order.
            let entries: Vec<(&ServerId, &Vec<PartitionDemand>)> = demands.iter().collect();
            let ranges = self.layout.item_ranges(entries.iter().map(|(sid, _)| **sid));
            let params = &self.params;
            let servers = &self.servers;
            let fanout_span = wallspan::span("solver.fanout");
            let span_ctx = wallspan::current_context();
            let entries_ref = &entries;
            let ranges_ref = &ranges;
            simcore::par::for_each_shard(&mut self.scratch[..shards], |shard, sc| {
                sc.evals.clear();
                sc.responses.clear();
                for (sid, parts) in &entries_ref[ranges_ref[shard].clone()] {
                    let _eval_span = span_ctx.child_shard("solver.evaluate", sid.0);
                    let server = &servers[*sid];
                    if server.state != ServerState::Online {
                        let pen = params.unavailable_penalty_ms;
                        sc.responses.extend(parts.iter().map(|d| (d.partition, (pen, pen, pen))));
                        continue;
                    }
                    let background = if server.compaction_backlog.is_empty() {
                        0.0
                    } else {
                        params.compact_mb_s
                    };
                    let eval =
                        evaluate_server(params, &server.config, server.warmth, background, parts);
                    let (icpu, idisk, ihandler) =
                        inflation_factors(params, &server.config, parts, &eval);
                    sc.responses.extend(parts.iter().zip(&eval.per_partition).map(|(d, t)| {
                        let base = (
                            (t.read.0 * icpu + t.read.1 * idisk) * ihandler,
                            (t.write.0 * icpu + t.write.1 * idisk) * ihandler + t.write_stall_ms,
                            (t.scan.0 * icpu + t.scan.1 * idisk) * ihandler,
                        );
                        let pen = if d.unavailable { params.unavailable_penalty_ms } else { 0.0 };
                        (d.partition, (base.0 + pen, base.1 + pen, base.2 + pen))
                    }));
                    sc.evals.push((**sid, eval));
                }
            });
            drop(fanout_span);
            // Covers the shard-order (= ID-order) combine and the
            // group-throughput update to the end of the iteration.
            let _merge_span = wallspan::span("solver.merge");
            response.clear();
            for sc in &mut self.scratch[..shards] {
                for &(p, r) in &sc.responses {
                    response.insert(p, r);
                }
                for (sid, eval) in sc.evals.drain(..) {
                    server_evals.insert(sid, eval);
                }
            }

            // Update each group's throughput.
            for (gi, g) in self.groups.iter().enumerate() {
                if !g.active {
                    x[gi] = 0.0;
                    continue;
                }
                let mut r_ms = g.think_ms;
                let pen = self.params.unavailable_penalty_ms;
                for &(p, w) in &g.read_weights {
                    let (rr, _, _) = response.get(&p).copied().unwrap_or((pen, pen, pen));
                    r_ms += g.mix.read * w * rr;
                }
                for &(p, w) in &g.write_weights {
                    let (_, rw, _) = response.get(&p).copied().unwrap_or((pen, pen, pen));
                    r_ms += g.mix.write * w * rw;
                }
                for &(p, w) in &g.scan_weights {
                    let (_, _, rs) = response.get(&p).copied().unwrap_or((pen, pen, pen));
                    r_ms += g.mix.scan * w * rs;
                }
                group_r_ms[gi] = r_ms;
                let mut target = g.threads / (r_ms / 1_000.0);
                if let Some(cap) = g.target_rate {
                    target = target.min(cap);
                }
                x[gi] = (1.0 - damping) * x[gi] + damping * target;
            }
            if iter >= SOLVER_ITERS - SOLVER_AVG_WINDOW {
                for (a, v) in avg.iter_mut().zip(&x) {
                    *a += v / SOLVER_AVG_WINDOW as f64;
                }
            }
        }
        let x = avg;
        for (gi, v) in x.iter().enumerate().take(n) {
            self.group_x[gi] = *v;
        }
        // Reporting pass at the settled equilibrium: one more per-server
        // evaluation at the cycle-averaged rates to build each server's
        // response-time mixture. Nothing here feeds back into `x`, so
        // group throughputs are exactly what they were without it.
        let _latency_span = wallspan::span("sim.latency");
        let demands = self.build_demands(&x, &localities, &group_rates);
        let entries: Vec<(&ServerId, &Vec<PartitionDemand>)> = demands.iter().collect();
        let ranges = self.layout.item_ranges(entries.iter().map(|(sid, _)| **sid));
        let params = &self.params;
        let servers = &self.servers;
        let span_ctx = wallspan::current_context();
        let entries_ref = &entries;
        let ranges_ref = &ranges;
        simcore::par::for_each_shard(&mut self.scratch[..shards], |shard, sc| {
            sc.latencies.clear();
            for (sid, parts) in &entries_ref[ranges_ref[shard].clone()] {
                let _eval_span = span_ctx.child_shard("latency.evaluate", sid.0);
                let server = &servers[*sid];
                let summary = if server.state != ServerState::Online {
                    // Clients still routed here block and retry.
                    let mut mix = LatencyMixture::new();
                    let rate: f64 =
                        parts.iter().map(|d| d.read_rps + d.write_rps + d.scan_rps).sum();
                    mix.push(rate, params.unavailable_penalty_ms);
                    mix.summary()
                } else {
                    let background = if server.compaction_backlog.is_empty() {
                        0.0
                    } else {
                        params.compact_mb_s
                    };
                    let eval =
                        evaluate_server(params, &server.config, server.warmth, background, parts);
                    let inflations = inflation_factors(params, &server.config, parts, &eval);
                    server_mixture(params, parts, &eval, inflations).summary()
                };
                sc.latencies.push((**sid, summary));
            }
        });
        let mut server_latency: BTreeMap<ServerId, LatencySummary> = BTreeMap::new();
        for sc in &mut self.scratch[..shards] {
            for (sid, lat) in sc.latencies.drain(..) {
                server_latency.insert(sid, lat);
            }
        }
        Equilibrium { group_x: x, group_r_ms, server_evals, server_latency }
    }
}

/// Queue-inflation factors `(icpu, idisk, ihandler)` for one online server
/// under `parts`. Handler pressure: outstanding requests beyond the handler
/// pool queue in front of the server.
fn inflation_factors(
    params: &CostParams,
    config: &StoreConfig,
    parts: &[PartitionDemand],
    eval: &ServerEval,
) -> (f64, f64, f64) {
    let icpu = queue_inflation(params, eval.rho_cpu);
    let idisk = queue_inflation(params, eval.rho_disk);
    let svc_ms: f64 = parts
        .iter()
        .zip(&eval.per_partition)
        .map(|(d, t)| {
            d.read_rps * (t.read.0 + t.read.1)
                + d.write_rps * (t.write.0 + t.write.1)
                + d.scan_rps * (t.scan.0 + t.scan.1)
        })
        .sum();
    let rho_handler = svc_ms / 1_000.0 / config.handler_count as f64;
    let ihandler =
        if params.use_handler_bound { queue_inflation(params, rho_handler / 4.0) } else { 1.0 };
    (icpu, idisk, ihandler)
}

/// The response-time mixture of one online server at equilibrium: one
/// exponential component per (partition, op class, cache outcome) stream,
/// weighted by the stream's rate, with the queue-inflated response time as
/// its mean. Splitting reads and scans by cache outcome is what gives the
/// tail its shape: hits are CPU-only, while one miss pays the full block
/// IO (`t.read.1` / `t.scan.1` are miss-weighted averages, hence the
/// division by the miss fraction).
fn server_mixture(
    params: &CostParams,
    parts: &[PartitionDemand],
    eval: &ServerEval,
    (icpu, idisk, ihandler): (f64, f64, f64),
) -> LatencyMixture {
    let mut mix = LatencyMixture::new();
    for (d, t) in parts.iter().zip(&eval.per_partition) {
        let pen = if d.unavailable { params.unavailable_penalty_ms } else { 0.0 };
        let miss = 1.0 - t.hit_ratio;
        mix.push(d.read_rps * t.hit_ratio, t.read.0 * icpu * ihandler + pen);
        if miss > f64::EPSILON {
            mix.push(
                d.read_rps * miss,
                (t.read.0 * icpu + t.read.1 / miss * idisk) * ihandler + pen,
            );
        }
        mix.push(
            d.write_rps,
            (t.write.0 * icpu + t.write.1 * idisk) * ihandler + t.write_stall_ms + pen,
        );
        let scan_miss = 1.0 - t.scan_hit_ratio;
        mix.push(d.scan_rps * t.scan_hit_ratio, t.scan.0 * icpu * ihandler + pen);
        if scan_miss > f64::EPSILON {
            mix.push(
                d.scan_rps * scan_miss,
                (t.scan.0 * icpu + t.scan.1 / scan_miss * idisk) * ihandler + pen,
            );
        }
    }
    mix
}

struct Equilibrium {
    group_x: Vec<f64>,
    group_r_ms: Vec<f64>,
    server_evals: BTreeMap<ServerId, ServerEval>,
    server_latency: BTreeMap<ServerId, LatencySummary>,
}

impl ElasticCluster for SimCluster {
    fn now(&self) -> SimTime {
        self.now
    }

    fn snapshot(&self) -> ClusterSnapshot {
        let mut by_server: BTreeMap<ServerId, Vec<PartitionId>> = BTreeMap::new();
        for (p, s) in &self.assignment {
            by_server.entry(*s).or_default().push(*p);
        }
        // One batched (parallel) locality pass reused for both the per-server
        // byte-weighted aggregate and the per-partition metric below.
        let localities = self.partition_localities();
        let servers = self
            .servers
            .iter()
            .filter(|(_, s)| s.state != ServerState::Stopped)
            .map(|(id, s)| {
                let parts = by_server.get(id).cloned().unwrap_or_default();
                // Byte-weighted locality over hosted partitions.
                let mut total = 0.0;
                let mut local = 0.0;
                for p in &parts {
                    let part = &self.partitions[p];
                    let bytes: u64 = part.files.iter().map(|(_, b)| *b).sum();
                    total += bytes as f64;
                    local += bytes as f64
                        * localities.get(p).copied().expect("assigned partition has locality");
                }
                let locality = if total > 0.0 { local / total } else { 1.0 };
                ServerMetrics {
                    server: *id,
                    health: s.health(),
                    cpu_util: s.last_cpu,
                    io_wait: s.last_io,
                    mem_util: s.last_mem,
                    requests_per_sec: s.last_rps,
                    p99_latency_ms: s.last_latency.p99_ms,
                    locality,
                    partitions: parts,
                    config: s.config.clone(),
                }
            })
            .collect();
        let partitions = self
            .partitions
            .iter()
            .map(|(id, p)| PartitionMetrics {
                partition: *id,
                table: p.table.clone(),
                counters: p.counters,
                size_bytes: p.size_bytes as u64,
                assigned_to: self.assignment.get(id).copied(),
                locality: localities.get(id).copied().unwrap_or(1.0),
                wal_backlog_bytes: p.recovery_backlog as u64,
                // The metadata simulation does not run the real background
                // pipeline; maintenance pressure only exists functionally.
                stall_ms: 0,
                frozen_memstores: 0,
                maintenance_debt_bytes: 0,
            })
            .collect();
        ClusterSnapshot { at: self.now, servers, partitions }
    }

    fn move_partition(&mut self, partition: PartitionId, to: ServerId) -> Result<(), AdminError> {
        if let Some(e) =
            self.injected_call_failure(FaultOp::Move, format!("move {partition} -> {to}"))
        {
            return Err(e);
        }
        if !self.partitions.contains_key(&partition) {
            return Err(AdminError::UnknownPartition(partition));
        }
        let server = self.servers.get(&to).ok_or(AdminError::UnknownServer(to))?;
        if server.state != ServerState::Online {
            return Err(AdminError::ServerUnavailable(to));
        }
        if self.assignment.get(&partition) == Some(&to) {
            return Ok(());
        }
        if self.assignment.contains_key(&partition) {
            self.do_move(partition, to);
        } else {
            self.assign_partition(partition, to)?;
        }
        Ok(())
    }

    fn restart_server(&mut self, server: ServerId, config: StoreConfig) -> Result<(), AdminError> {
        if let Some(e) = self.injected_call_failure(FaultOp::Restart, format!("restart {server}")) {
            return Err(e);
        }
        config.validate().map_err(|e| AdminError::BadConfig(e.to_string()))?;
        let restart = SimDuration::from_secs_f64(self.params.restart_s);
        let until = self.now + restart;
        let s = self.servers.get_mut(&server).ok_or(AdminError::UnknownServer(server))?;
        if s.state != ServerState::Online {
            return Err(AdminError::ServerUnavailable(server));
        }
        s.config = config;
        s.state = ServerState::Restarting { until };
        s.warmth = 0.0;
        s.compaction_backlog.clear();
        Ok(())
    }

    fn major_compact(&mut self, partition: PartitionId) -> Result<(), AdminError> {
        if let Some(e) =
            self.injected_call_failure(FaultOp::Compact, format!("compact {partition}"))
        {
            return Err(e);
        }
        let sid =
            *self.assignment.get(&partition).ok_or(AdminError::UnknownPartition(partition))?;
        let part =
            self.partitions.get(&partition).ok_or(AdminError::UnknownPartition(partition))?;
        let bytes: u64 = part.files.iter().map(|(_, b)| *b).sum();
        let server = self.servers.get_mut(&sid).ok_or(AdminError::UnknownServer(sid))?;
        if server.state != ServerState::Online {
            return Err(AdminError::ServerUnavailable(sid));
        }
        // Read + write the whole partition.
        server.compaction_backlog.push_back((partition, 2.0 * bytes as f64));
        Ok(())
    }

    fn provision_server(&mut self, config: StoreConfig) -> Result<ServerId, AdminError> {
        config.validate().map_err(|e| AdminError::BadConfig(e.to_string()))?;
        let mut delay = self.provision_delay;
        match self.faults.take_provision_fault(self.now) {
            None => {}
            Some(ProvisionFault::Fail) => {
                self.telemetry.counter_add("sim_provision_faults_total", &[], 1);
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::FaultInjected {
                        kind: "provision_fail".to_string(),
                        target: None,
                        detail: "injected VM boot failure".to_string(),
                    },
                );
                return Err(AdminError::ProvisioningFailed("injected VM boot failure".into()));
            }
            Some(ProvisionFault::Slow(factor)) => {
                delay = SimDuration::from_secs_f64(delay.as_secs_f64().max(1.0) * factor);
                self.telemetry.counter_add("sim_provision_faults_total", &[], 1);
                self.telemetry.emit(
                    self.now,
                    TelemetryEvent::FaultInjected {
                        kind: "slow_boot".to_string(),
                        target: None,
                        detail: format!("injected slow boot ({factor:.1}x)"),
                    },
                );
            }
        }
        let id = ServerId(self.next_server);
        self.next_server += 1;
        let state = if delay.is_zero() {
            ServerState::Online
        } else {
            ServerState::Provisioning { until: self.now + delay }
        };
        self.servers.insert(
            id,
            SimServer {
                config,
                state,
                warmth: 0.05,
                rng: self.rng_streams.fork(&format!("server-{}", id.0)),
                compaction_backlog: VecDeque::new(),
                last_cpu: 0.0,
                last_io: 0.0,
                last_mem: 0.0,
                last_rps: 0.0,
                last_latency: LatencySummary::default(),
                cache_hits: 0,
                cache_misses: 0,
            },
        );
        self.namenode.add_datanode(DataNodeId(id.0));
        Ok(id)
    }

    fn decommission_server(&mut self, server: ServerId) -> Result<(), AdminError> {
        if !self.servers.contains_key(&server) {
            return Err(AdminError::UnknownServer(server));
        }
        let remaining: Vec<ServerId> =
            self.online_server_ids().into_iter().filter(|s| *s != server).collect();
        if remaining.is_empty() {
            return Err(AdminError::LastServer);
        }
        // HBase master reassigns the closed server's regions (randomly).
        // The draws come from the decommissioned server's own forked
        // stream, so the reassignment sequence is attributable to this
        // server and independent of unrelated control-plane randomness.
        let victims: Vec<PartitionId> =
            self.assignment.iter().filter(|(_, s)| **s == server).map(|(p, _)| *p).collect();
        let mut stream = self.servers.get(&server).expect("checked").rng.clone();
        for p in victims {
            let target = *stream.pick(&remaining);
            self.do_move(p, target);
        }
        let s = self.servers.get_mut(&server).expect("checked");
        s.rng = stream;
        s.state = ServerState::Stopped;
        let _ = self.namenode.remove_datanode(DataNodeId(server.0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic_cluster(servers: usize, seed: u64) -> (SimCluster, Vec<PartitionId>) {
        let mut sim = SimCluster::new(CostParams::default(), seed);
        for _ in 0..servers {
            sim.add_server_immediate(StoreConfig::default_homogeneous());
        }
        let parts: Vec<PartitionId> = (0..4)
            .map(|_| {
                sim.create_partition(PartitionSpec {
                    table: "t".into(),
                    size_bytes: 1.5e9,
                    record_bytes: 1_000.0,
                    hot_set_fraction: 0.4,
                    hot_ops_fraction: 0.5,
                })
            })
            .collect();
        sim.random_balance_unassigned();
        (sim, parts)
    }

    fn read_group(parts: &[PartitionId], threads: f64) -> ClientGroup {
        let w = 1.0 / parts.len() as f64;
        ClientGroup::with_common_weights(
            "readers",
            threads,
            0.5,
            None,
            OpMix::read_only(),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.0,
        )
    }

    #[test]
    fn throughput_emerges_and_is_positive() {
        let (mut sim, parts) = basic_cluster(4, 1);
        sim.add_group(read_group(&parts, 50.0));
        sim.run_ticks(60);
        let last = sim.total_series().points().last().unwrap().1;
        assert!(last > 100.0, "throughput {last} too low");
    }

    #[test]
    fn more_servers_give_more_throughput() {
        let mut results = Vec::new();
        for servers in [1usize, 4] {
            let mut sim = SimCluster::new(CostParams::default(), 3);
            for _ in 0..servers {
                sim.add_server_immediate(StoreConfig::default_homogeneous());
            }
            let parts: Vec<PartitionId> = (0..8)
                .map(|_| {
                    sim.create_partition(PartitionSpec {
                        table: "t".into(),
                        size_bytes: 1.5e9,
                        record_bytes: 1_000.0,
                        hot_set_fraction: 0.4,
                        hot_ops_fraction: 0.5,
                    })
                })
                .collect();
            sim.random_balance_unassigned();
            sim.add_group(read_group(&parts, 100.0));
            sim.run_ticks(120);
            results.push(sim.total_series().mean_after(SimTime::from_secs(60)).unwrap());
        }
        assert!(
            results[1] > results[0] * 1.5,
            "4 servers ({:.0}) should clearly beat 1 ({:.0})",
            results[1],
            results[0]
        );
    }

    #[test]
    fn target_rate_caps_throughput() {
        let (mut sim, parts) = basic_cluster(4, 5);
        let mut g = read_group(&parts, 50.0);
        g.target_rate = Some(1_500.0);
        sim.add_group(g);
        sim.run_ticks(60);
        let last = sim.total_series().points().last().unwrap().1;
        assert!(last <= 1_500.0 + 1.0, "cap violated: {last}");
        assert!(last > 1_200.0, "cap not approached: {last}");
    }

    #[test]
    fn counters_accumulate_with_mix() {
        let (mut sim, parts) = basic_cluster(2, 7);
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "mixed",
            20.0,
            0.5,
            None,
            OpMix::new(0.5, 0.5, 0.0),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.0,
        ));
        sim.run_ticks(30);
        let snap = sim.snapshot();
        let totals: PartitionCounters =
            snap.partitions.iter().fold(PartitionCounters::default(), |acc, p| PartitionCounters {
                reads: acc.reads + p.counters.reads,
                writes: acc.writes + p.counters.writes,
                scans: acc.scans + p.counters.scans,
            });
        assert!(totals.reads > 0 && totals.writes > 0);
        assert_eq!(totals.scans, 0);
        let ratio = totals.reads as f64 / totals.writes as f64;
        assert!((0.9..1.1).contains(&ratio), "read/write ratio {ratio}");
    }

    #[test]
    fn inserts_grow_data() {
        let (mut sim, parts) = basic_cluster(2, 9);
        let before = sim.snapshot().partitions[0].size_bytes;
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "loggers",
            30.0,
            0.5,
            None,
            OpMix::write_only(),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.95,
        ));
        sim.run_ticks(120);
        let after = sim.snapshot().partitions[0].size_bytes;
        assert!(after > before, "inserts must grow data: {before} → {after}");
    }

    #[test]
    fn move_causes_temporary_unavailability_and_locality_loss() {
        let (mut sim, parts) = basic_cluster(3, 11);
        sim.add_group(read_group(&parts, 50.0));
        sim.run_ticks(30);
        let p = parts[0];
        let from = sim.partition_server(p).unwrap();
        assert!(sim.partition_locality(p) > 0.99);
        let to = sim.online_server_ids().into_iter().find(|s| *s != from).unwrap();
        // Target must not hold a replica for the test to be meaningful; with
        // rf=2 on 3 nodes this usually holds, but verify via locality delta.
        sim.move_partition(p, to).unwrap();
        let thr_during: f64 = {
            sim.step();
            sim.total_series().points().last().unwrap().1
        };
        sim.run_ticks(30);
        let thr_after = sim.total_series().points().last().unwrap().1;
        assert!(thr_during < thr_after, "move outage should dent throughput");
        assert!(sim.partition_locality(p) <= 1.0);
    }

    #[test]
    fn major_compact_restores_locality() {
        let (mut sim, parts) = basic_cluster(4, 13);
        sim.add_group(read_group(&parts, 20.0));
        sim.run_ticks(5);
        let p = parts[0];
        let from = sim.partition_server(p).unwrap();
        // Move to every other server until locality actually drops.
        let mut dropped = false;
        for to in sim.online_server_ids() {
            if to == from {
                continue;
            }
            sim.move_partition(p, to).unwrap();
            sim.run_ticks(5);
            if sim.partition_locality(p) < 0.99 {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "could not create a locality drop (rf covers all nodes?)");
        sim.major_compact(p).unwrap();
        // 1.5 GB × 2 at 17 MB/s ≈ 175 s.
        sim.run_ticks(200);
        assert!(sim.partition_locality(p) > 0.99, "locality {}", sim.partition_locality(p));
    }

    #[test]
    fn restart_makes_server_unavailable_then_cold() {
        let (mut sim, parts) = basic_cluster(2, 17);
        sim.add_group(read_group(&parts, 50.0));
        sim.run_ticks(120); // warm up
        let warm_thr = sim.total_series().mean_after(SimTime::from_secs(90)).unwrap();
        let victim = sim.online_server_ids()[0];
        sim.restart_server(victim, StoreConfig::default_homogeneous()).unwrap();
        sim.run_ticks(5);
        let during = sim.total_series().points().last().unwrap().1;
        assert!(during < warm_thr * 0.8, "restart should dent throughput: {during} vs {warm_thr}");
        sim.run_ticks(60);
        let snap = sim.snapshot();
        assert_eq!(snap.server(victim).unwrap().health, ServerHealth::Online);
    }

    #[test]
    fn provisioning_delay_is_respected() {
        let (mut sim, _parts) = basic_cluster(2, 19);
        sim.set_provision_delay(SimDuration::from_secs(60));
        let id = sim.provision_server(StoreConfig::default_homogeneous()).unwrap();
        sim.run_ticks(30);
        assert_eq!(sim.snapshot().server(id).unwrap().health, ServerHealth::Provisioning);
        sim.run_ticks(40);
        assert_eq!(sim.snapshot().server(id).unwrap().health, ServerHealth::Online);
    }

    #[test]
    fn decommission_reassigns_partitions() {
        let (mut sim, parts) = basic_cluster(3, 23);
        sim.add_group(read_group(&parts, 20.0));
        sim.run_ticks(5);
        let victim = sim.partition_server(parts[0]).unwrap();
        sim.decommission_server(victim).unwrap();
        for p in &parts {
            let s = sim.partition_server(*p).unwrap();
            assert_ne!(s, victim, "{p} still on decommissioned server");
        }
        assert_eq!(sim.online_server_ids().len(), 2);
    }

    #[test]
    fn cannot_decommission_last_server() {
        let (mut sim, _) = basic_cluster(1, 29);
        let only = sim.online_server_ids()[0];
        assert_eq!(sim.decommission_server(only), Err(AdminError::LastServer));
    }

    #[test]
    fn rebalance_counts_evens_out() {
        let (mut sim, parts) = basic_cluster(2, 31);
        // Pile everything on one server.
        let target = sim.online_server_ids()[0];
        for p in &parts {
            sim.move_partition(*p, target).unwrap();
        }
        let moves = sim.rebalance_counts();
        assert!(moves >= 1);
        let snap = sim.snapshot();
        for s in snap.servers {
            assert!(s.partitions.len() <= 3, "server {} has {}", s.server, s.partitions.len());
        }
    }

    #[test]
    fn group_deactivation_stops_traffic() {
        let (mut sim, parts) = basic_cluster(2, 37);
        sim.add_group(read_group(&parts, 50.0));
        sim.run_ticks(20);
        sim.set_group_active("readers", false);
        sim.run_ticks(5);
        let last = sim.total_series().points().last().unwrap().1;
        assert_eq!(last, 0.0);
    }

    #[test]
    fn latency_series_tracks_load() {
        let (mut sim, parts) = basic_cluster(2, 41);
        sim.add_group(read_group(&parts, 10.0));
        sim.run_ticks(30);
        let light =
            sim.group_latency_ms("readers").unwrap().mean_after(SimTime::from_secs(20)).unwrap();
        assert!(light > 0.0, "latency must be positive");
        // Much heavier concurrency raises the response time.
        let (mut sim2, parts2) = basic_cluster(2, 41);
        sim2.add_group(read_group(&parts2, 800.0));
        sim2.run_ticks(30);
        let heavy =
            sim2.group_latency_ms("readers").unwrap().mean_after(SimTime::from_secs(20)).unwrap();
        assert!(heavy > light, "heavy load latency {heavy} ≤ light {light}");
    }

    #[test]
    fn auto_split_divides_growing_partitions_and_weights() {
        let (mut sim, parts) = basic_cluster(2, 43);
        sim.set_auto_split(Some(2e9));
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "loggers",
            200.0,
            0.5,
            None,
            OpMix::write_only(),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            1.0, // pure inserts: fastest growth
        ));
        // Partitions start at 1.5 GB and grow toward the 2 GB split line.
        sim.run_ticks(600);
        assert!(sim.split_count() >= 1, "no split despite growth");
        let snap = sim.snapshot();
        assert!(snap.partitions.len() > parts.len());
        // No partition above the split threshold survives for long.
        for p in &snap.partitions {
            assert!(
                (p.size_bytes as f64) < 2.1e9,
                "{} still oversized: {}",
                p.partition,
                p.size_bytes
            );
        }
        // Throughput keeps flowing after splits (weights still sum to 1).
        let last = sim.total_series().points().last().unwrap().1;
        assert!(last > 100.0);
    }

    #[test]
    fn manual_split_halves_and_preserves_totals() {
        let (mut sim, parts) = basic_cluster(2, 47);
        sim.add_group(read_group(&parts, 50.0));
        sim.run_ticks(10);
        let before = sim.snapshot();
        let total_before: u64 = before.partitions.iter().map(|p| p.size_bytes).sum();
        let q = sim.split_partition(parts[0]).expect("splittable");
        let after = sim.snapshot();
        let total_after: u64 = after.partitions.iter().map(|p| p.size_bytes).sum();
        assert!((total_after as i64 - total_before as i64).unsigned_abs() < 4, "bytes lost");
        // The daughter sits on the same server.
        assert_eq!(sim.partition_server(q), sim.partition_server(parts[0]));
        // Traffic reaches both halves.
        sim.run_ticks(20);
        let snap = sim.snapshot();
        let c_p = snap.partitions.iter().find(|m| m.partition == parts[0]).unwrap().counters;
        let c_q = snap.partitions.iter().find(|m| m.partition == q).unwrap().counters;
        assert!(c_p.reads > 0 && c_q.reads > 0, "one half starved: {c_p:?} {c_q:?}");
    }

    #[test]
    fn admin_error_paths_are_reported() {
        let (mut sim, parts) = basic_cluster(2, 53);
        let ghost_server = ServerId(99);
        let ghost_part = PartitionId(99);
        assert_eq!(
            sim.move_partition(parts[0], ghost_server),
            Err(AdminError::UnknownServer(ghost_server))
        );
        assert_eq!(
            sim.move_partition(ghost_part, sim.online_server_ids()[0]),
            Err(AdminError::UnknownPartition(ghost_part))
        );
        assert_eq!(
            sim.restart_server(ghost_server, StoreConfig::default_homogeneous()),
            Err(AdminError::UnknownServer(ghost_server))
        );
        assert_eq!(sim.major_compact(ghost_part), Err(AdminError::UnknownPartition(ghost_part)));
        // Restarting a restarting server is unavailable.
        let victim = sim.online_server_ids()[0];
        sim.restart_server(victim, StoreConfig::default_homogeneous()).unwrap();
        assert_eq!(
            sim.restart_server(victim, StoreConfig::default_homogeneous()),
            Err(AdminError::ServerUnavailable(victim))
        );
        // Invalid configs are rejected up front.
        let mut bad = StoreConfig::default_homogeneous();
        bad.block_cache_fraction = 0.9;
        assert!(matches!(sim.provision_server(bad), Err(AdminError::BadConfig(_))));
    }

    #[test]
    fn moving_a_partition_to_a_restarting_server_is_rejected() {
        let (mut sim, parts) = basic_cluster(2, 59);
        let target = sim.online_server_ids()[1];
        sim.restart_server(target, StoreConfig::default_homogeneous()).unwrap();
        assert_eq!(
            sim.move_partition(parts[0], target),
            Err(AdminError::ServerUnavailable(target))
        );
        // Once online again, the move succeeds.
        sim.run_ticks(40);
        sim.move_partition(parts[0], target).unwrap();
        assert_eq!(sim.partition_server(parts[0]), Some(target));
    }

    #[test]
    fn determinism_same_seed_same_series() {
        // Asymmetric partition weights so that *which* partitions co-locate
        // (the random placement) actually matters.
        let run = |seed| {
            let mut sim = SimCluster::new(CostParams::default(), seed);
            for _ in 0..3 {
                sim.add_server_immediate(StoreConfig::default_homogeneous());
            }
            let parts: Vec<PartitionId> = (0..8)
                .map(|_| {
                    sim.create_partition(PartitionSpec {
                        table: "t".into(),
                        size_bytes: 1.5e9,
                        record_bytes: 1_000.0,
                        hot_set_fraction: 0.4,
                        hot_ops_fraction: 0.5,
                    })
                })
                .collect();
            sim.random_balance_unassigned();
            let mut g = read_group(&parts, 120.0);
            let weights = [0.30, 0.25, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02];
            let wv: Vec<_> = parts.iter().zip(weights).map(|(p, w)| (*p, w)).collect();
            g.read_weights = wv.clone();
            g.write_weights = wv.clone();
            g.scan_weights = wv;
            sim.add_group(g);
            sim.run_ticks(50);
            sim.total_series().points().to_vec()
        };
        assert_eq!(run(99), run(99));
        // At least one of several seeds must place partitions differently
        // enough to change throughput.
        let base = run(99);
        assert!(
            (100..105).any(|s| run(s) != base),
            "placement randomness has no effect on throughput"
        );
    }

    #[test]
    fn crash_orphans_partitions_and_queues_dfs_repair() {
        let (mut sim, parts) = basic_cluster(3, 11);
        sim.add_group(read_group(&parts, 50.0));
        sim.run_ticks(30);
        let victim = sim.online_server_ids()[0];
        let orphaned: Vec<PartitionId> =
            parts.iter().copied().filter(|p| sim.partition_server(*p) == Some(victim)).collect();
        assert!(!orphaned.is_empty(), "victim should host something");
        assert!(sim.crash_server(victim));
        assert!(!sim.crash_server(victim), "double crash is a no-op");
        // The crashed server vanishes from the snapshot but its partitions
        // stay assigned to it: that is the orphan signal MeT heals from.
        let snap = sim.snapshot();
        assert!(snap.server(victim).is_none());
        for p in &orphaned {
            let pm = snap.partitions.iter().find(|m| m.partition == *p).unwrap();
            assert_eq!(pm.assigned_to, Some(victim), "partition stays orphan-assigned");
        }
        // Blocks the datanode held are under-replicated and repair lazily.
        assert!(sim.under_replicated_bytes() > 0, "crash must strand block replicas");
        sim.run_ticks(600);
        assert_eq!(sim.under_replicated_bytes(), 0, "background repair drains the queue");
    }

    #[test]
    fn crash_strands_wal_backlog_and_rehoming_replays_it() {
        let (mut sim, parts) = basic_cluster(3, 14);
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "writers",
            50.0,
            0.5,
            None,
            OpMix::write_only(),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.0,
        ));
        let telemetry = Telemetry::with_ring(telemetry::Verbosity::Info, 4096);
        sim.set_telemetry(telemetry.clone());
        // Slow replay so the recovery outage spans several ticks.
        sim.set_wal_replay_rate_mb_s(1.0);
        sim.run_ticks(30);
        let victim = sim.online_server_ids()[0];
        let orphaned: Vec<PartitionId> =
            parts.iter().copied().filter(|p| sim.partition_server(*p) == Some(victim)).collect();
        assert!(!orphaned.is_empty(), "victim should host something");
        assert!(sim.crash_server(victim));
        let snap = sim.snapshot();
        let backlog: u64 = snap
            .partitions
            .iter()
            .filter(|m| orphaned.contains(&m.partition))
            .map(|m| m.wal_backlog_bytes)
            .sum();
        assert!(backlog > 0, "crash must strand the victim's memstore as WAL backlog");
        let backlog_p = snap
            .partitions
            .iter()
            .find(|m| m.partition == orphaned[0])
            .map(|m| m.wal_backlog_bytes)
            .unwrap();
        assert!(backlog_p > 0, "the re-homed orphan itself carries backlog");
        // Re-homing an orphan consumes the backlog and starts replay.
        let target = sim.online_server_ids()[0];
        sim.move_partition(orphaned[0], target).unwrap();
        assert!(
            telemetry.events().iter().any(|e| matches!(e.data,
                TelemetryEvent::RecoveryStarted { region, wal_bytes, .. }
                    if region == orphaned[0].0 && wal_bytes > 0)),
            "re-homing must start WAL replay"
        );
        let snap = sim.snapshot();
        let pm = snap.partitions.iter().find(|m| m.partition == orphaned[0]).unwrap();
        assert_eq!(pm.wal_backlog_bytes, 0, "the move consumed the backlog");
        // Replay finishes and reports the move outage plus the modeled
        // replay time (backlog at 1 MB/s).
        sim.run_ticks(600);
        let min_ms = 3_000.0 + backlog_p as f64 / 1e6 * 1_000.0;
        assert!(
            telemetry.events().iter().any(|e| matches!(e.data,
                TelemetryEvent::RecoveryCompleted { region, duration_ms, .. }
                    if region == orphaned[0].0 && duration_ms as f64 >= min_ms)),
            "replay must complete no faster than outage + backlog/rate ({min_ms} ms)"
        );
    }

    #[test]
    fn wal_durability_off_restores_legacy_crash_semantics() {
        let (mut sim, parts) = basic_cluster(3, 14);
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "writers",
            50.0,
            0.5,
            None,
            OpMix::write_only(),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.0,
        ));
        let telemetry = Telemetry::with_ring(telemetry::Verbosity::Info, 4096);
        sim.set_telemetry(telemetry.clone());
        sim.set_wal_durability(false);
        sim.run_ticks(30);
        let victim = sim.online_server_ids()[0];
        let orphaned: Vec<PartitionId> =
            parts.iter().copied().filter(|p| sim.partition_server(*p) == Some(victim)).collect();
        assert!(!orphaned.is_empty());
        assert!(sim.crash_server(victim));
        let snap = sim.snapshot();
        assert!(
            snap.partitions.iter().all(|m| m.wal_backlog_bytes == 0),
            "legacy model strands no backlog"
        );
        let target = sim.online_server_ids()[0];
        sim.move_partition(orphaned[0], target).unwrap();
        sim.run_ticks(60);
        assert!(
            !telemetry.events().iter().any(|e| matches!(
                e.data,
                TelemetryEvent::RecoveryStarted { .. } | TelemetryEvent::RecoveryCompleted { .. }
            )),
            "legacy model performs no WAL replay"
        );
    }

    #[test]
    fn disk_faults_crash_or_corrupt_through_the_injector() {
        use simcore::fault::{FaultSpec, ScheduledFault};
        use simcore::FaultPlan;
        let (mut sim, parts) = basic_cluster(3, 15);
        sim.add_group(read_group(&parts, 50.0));
        let telemetry = Telemetry::with_ring(telemetry::Verbosity::Info, 4096);
        sim.set_telemetry(telemetry.clone());
        let before = sim.online_server_ids().len();
        let plan = FaultPlan::new(vec![
            ScheduledFault { at: SimTime::from_secs(3), spec: FaultSpec::TornWrite { bytes: 17 } },
            ScheduledFault { at: SimTime::from_secs(5), spec: FaultSpec::FsyncFail },
            ScheduledFault { at: SimTime::from_secs(7), spec: FaultSpec::BitRot { block: 2 } },
        ]);
        sim.set_fault_injector(plan.injector());
        sim.run_ticks(10);
        assert_eq!(
            sim.online_server_ids().len(),
            before - 2,
            "torn write and fsync failure each kill a server"
        );
        let kinds: Vec<String> = telemetry
            .events()
            .iter()
            .filter_map(|e| match &e.data {
                TelemetryEvent::FaultInjected { kind, .. } => Some(kind.clone()),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&"torn_write".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"fsync_fail".to_string()), "{kinds:?}");
        assert!(
            telemetry
                .events()
                .iter()
                .any(|e| matches!(e.data, TelemetryEvent::CorruptionDetected { .. })),
            "bit-rot must surface as a corruption event"
        );
    }

    #[test]
    fn scripted_faults_fail_calls_then_recover() {
        use simcore::fault::{FaultSpec, ScheduledFault};
        use simcore::FaultPlan;
        let (mut sim, parts) = basic_cluster(3, 12);
        let plan = FaultPlan::new(vec![
            ScheduledFault {
                at: SimTime::from_secs(5),
                spec: FaultSpec::CallFail { op: FaultOp::Move },
            },
            ScheduledFault { at: SimTime::from_secs(5), spec: FaultSpec::ProvisionFail },
        ]);
        let injector = plan.injector();
        sim.set_fault_injector(injector.clone());
        sim.run_ticks(10);
        let target = sim.online_server_ids()[1];
        let err = sim.move_partition(parts[0], target);
        assert!(matches!(err, Err(AdminError::TransientFailure(_))), "{err:?}");
        // The fault was consumed: the retry goes through.
        sim.move_partition(parts[0], target).unwrap();
        let err = sim.provision_server(StoreConfig::default_homogeneous());
        assert!(matches!(err, Err(AdminError::ProvisioningFailed(_))), "{err:?}");
        sim.provision_server(StoreConfig::default_homogeneous()).unwrap();
        assert_eq!(injector.injected(), 2);
    }

    #[test]
    fn scheduled_crash_fires_against_online_index() {
        use simcore::fault::{FaultSpec, ScheduledFault};
        use simcore::FaultPlan;
        let (mut sim, parts) = basic_cluster(3, 13);
        sim.add_group(read_group(&parts, 50.0));
        let before = sim.online_server_ids();
        let plan = FaultPlan::new(vec![ScheduledFault {
            at: SimTime::from_secs(4),
            spec: FaultSpec::ServerCrash { online_index: 1 },
        }]);
        sim.set_fault_injector(plan.injector());
        sim.run_ticks(10);
        let after = sim.online_server_ids();
        assert_eq!(after.len(), before.len() - 1);
        assert!(!after.contains(&before[1]), "the second online server crashed");
    }

    #[test]
    fn parallel_engine_matches_sequential() {
        // The same scenario — solver, compaction drain, warm-up, cache
        // metrics, admin ops that draw from per-server RNG streams — must
        // produce bit-identical results at any thread count.
        let run = |threads: usize| {
            let mut sim = SimCluster::new(CostParams::default(), 42);
            sim.set_threads(threads);
            for _ in 0..4 {
                sim.add_server_immediate(StoreConfig::default_homogeneous());
            }
            let parts: Vec<PartitionId> = (0..8)
                .map(|_| {
                    sim.create_partition(PartitionSpec {
                        table: "t".into(),
                        size_bytes: 1.5e9,
                        record_bytes: 1_000.0,
                        hot_set_fraction: 0.4,
                        hot_ops_fraction: 0.5,
                    })
                })
                .collect();
            sim.random_balance_unassigned();
            let w = 1.0 / parts.len() as f64;
            sim.add_group(ClientGroup::with_common_weights(
                "mixed",
                60.0,
                0.5,
                None,
                OpMix::new(0.45, 0.45, 0.10),
                parts.iter().map(|p| (*p, w)).collect(),
                1.0,
                0.0,
            ));
            sim.run_ticks(30);
            sim.major_compact(parts[0]).unwrap();
            let added = sim.provision_server(StoreConfig::default_homogeneous()).unwrap();
            sim.run_ticks(40);
            sim.move_partition(parts[1], added).unwrap();
            let victim = sim.online_server_ids()[0];
            sim.decommission_server(victim).unwrap();
            sim.run_ticks(30);
            // Debug-format the snapshot: f64's shortest-round-trip output
            // means any bit difference shows up in the string.
            (sim.total_series().points().to_vec(), format!("{:?}", sim.snapshot()))
        };
        let (seq_series, seq_snap) = run(1);
        let (par_series, par_snap) = run(4);
        assert_eq!(seq_series, par_series, "throughput series diverged across thread counts");
        assert_eq!(seq_snap, par_snap, "snapshot diverged across thread counts");
    }

    #[test]
    fn slow_boot_fault_stretches_provisioning() {
        use simcore::fault::{FaultSpec, ScheduledFault};
        use simcore::FaultPlan;
        let mut sim = SimCluster::new(CostParams::default(), 14);
        sim.add_server_immediate(StoreConfig::default_homogeneous());
        sim.set_provision_delay(SimDuration::from_secs(10));
        let plan = FaultPlan::new(vec![ScheduledFault {
            at: SimTime::ZERO,
            spec: FaultSpec::SlowBoot { factor: 3.0 },
        }]);
        sim.set_fault_injector(plan.injector());
        let id = sim.provision_server(StoreConfig::default_homogeneous()).unwrap();
        sim.run_ticks(15);
        let snap = sim.snapshot();
        assert_eq!(snap.server(id).unwrap().health, ServerHealth::Provisioning, "3x slower");
        sim.run_ticks(20);
        assert_eq!(sim.snapshot().server(id).unwrap().health, ServerHealth::Online);
    }
}
