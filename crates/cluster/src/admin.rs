//! The management interface MeT and the baselines drive (Fig. 2's
//! "NoSQL interface").
//!
//! MeT's monitor reads [`ClusterSnapshot`]s (system metrics via
//! Ganglia-equivalent, NoSQL metrics via JMX-equivalent) and its actuator
//! invokes the mutation methods: partition moves, server restarts with a new
//! configuration, major compactions, and node addition/removal. Both the
//! simulated cluster and an IaaS wrapper implement [`ElasticCluster`], so
//! the control plane is oblivious to which it manages — mirroring the
//! paper's design where MeT interfaces either HBase directly or through
//! OpenStack.

use crate::types::{PartitionCounters, PartitionId, ServerId};
use hstore::StoreConfig;
use simcore::SimTime;
use std::fmt;

/// Operational state of a server as seen by the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHealth {
    /// Serving requests.
    Online,
    /// Restarting with a new configuration; serving nothing.
    Restarting,
    /// Being provisioned (VM booting).
    Provisioning,
    /// Decommissioned.
    Stopped,
}

/// Per-server metrics: the system metrics MeT gathers through Ganglia plus
/// the per-node NoSQL metrics from JMX (§4.1, §5).
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Server identity.
    pub server: ServerId,
    /// Operational state.
    pub health: ServerHealth,
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// I/O wait in `[0, 1]` (disk utilization).
    pub io_wait: f64,
    /// Memory utilization in `[0, 1]`.
    pub mem_util: f64,
    /// Requests per second served last interval.
    pub requests_per_sec: f64,
    /// 99th-percentile response time last interval, ms — the tail-latency
    /// signal the SLO gate in the decision maker watches. Zero when the
    /// server saw no demand (or the cluster layer does not model latency).
    pub p99_latency_ms: f64,
    /// Data-locality index in `[0, 1]` (§4.1).
    pub locality: f64,
    /// Partitions currently assigned.
    pub partitions: Vec<PartitionId>,
    /// The storage configuration the server is running.
    pub config: StoreConfig,
}

/// Per-partition metrics (per-region JMX counters).
#[derive(Debug, Clone)]
pub struct PartitionMetrics {
    /// Partition identity.
    pub partition: PartitionId,
    /// Owning table.
    pub table: String,
    /// Cumulative request counters since creation.
    pub counters: PartitionCounters,
    /// Current data size in bytes.
    pub size_bytes: u64,
    /// The server currently assigned (if any).
    pub assigned_to: Option<ServerId>,
    /// Fraction of the partition's bytes locally readable on its current
    /// server (1.0 when unassigned or empty).
    pub locality: f64,
    /// WAL bytes stranded by a crash of the partition's last host, still
    /// awaiting replay. Non-zero only between a crash and the partition's
    /// re-homing; the control plane reads it to report recovery work.
    pub wal_backlog_bytes: u64,
    /// Writer wall-clock lost to maintenance backpressure since creation,
    /// milliseconds. Zero when the partition runs inline maintenance.
    pub stall_ms: u64,
    /// Frozen memstores awaiting a background flush right now (queue-depth
    /// gauge; zero under inline maintenance).
    pub frozen_memstores: u64,
    /// Heap bytes across those frozen memstores — the flush debt the
    /// background pipeline still owes.
    pub maintenance_debt_bytes: u64,
}

/// A point-in-time view of the whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Snapshot time.
    pub at: SimTime,
    /// Every known server.
    pub servers: Vec<ServerMetrics>,
    /// Every known partition.
    pub partitions: Vec<PartitionMetrics>,
}

impl ClusterSnapshot {
    /// Metrics for one server, if present.
    pub fn server(&self, id: ServerId) -> Option<&ServerMetrics> {
        self.servers.iter().find(|s| s.server == id)
    }

    /// Ids of servers currently online.
    pub fn online_servers(&self) -> Vec<ServerId> {
        self.servers.iter().filter(|s| s.health == ServerHealth::Online).map(|s| s.server).collect()
    }

    /// Total requests per second across online servers.
    pub fn total_rps(&self) -> f64 {
        self.servers.iter().map(|s| s.requests_per_sec).sum()
    }
}

/// Errors from management operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminError {
    /// The referenced server does not exist.
    UnknownServer(ServerId),
    /// The referenced partition does not exist.
    UnknownPartition(PartitionId),
    /// The server is not in a state that allows the operation.
    ServerUnavailable(ServerId),
    /// Removing this server would leave no online server to host its data.
    LastServer,
    /// An invalid configuration was supplied.
    BadConfig(String),
    /// Provisioning failed (e.g. IaaS quota exhausted).
    ProvisioningFailed(String),
    /// A management call failed transiently (lost RPC, master hiccup);
    /// retrying it is expected to succeed.
    TransientFailure(String),
}

impl fmt::Display for AdminError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminError::UnknownServer(s) => write!(f, "unknown server {s}"),
            AdminError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            AdminError::ServerUnavailable(s) => write!(f, "server {s} unavailable"),
            AdminError::LastServer => write!(f, "cannot remove the last online server"),
            AdminError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            AdminError::ProvisioningFailed(msg) => write!(f, "provisioning failed: {msg}"),
            AdminError::TransientFailure(msg) => write!(f, "transient failure: {msg}"),
        }
    }
}

impl std::error::Error for AdminError {}

/// The full management surface a control plane needs.
pub trait ElasticCluster {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// A full metrics snapshot.
    fn snapshot(&self) -> ClusterSnapshot;

    /// Moves a partition to another online server. The partition is briefly
    /// unavailable (region close/open); its files do not move, so locality
    /// on the destination typically drops until a major compaction.
    fn move_partition(&mut self, partition: PartitionId, to: ServerId) -> Result<(), AdminError>;

    /// Restarts a server with a new storage configuration. HBase has no
    /// online reconfiguration (§5), so the server serves nothing until the
    /// restart completes and its cache restarts cold.
    fn restart_server(&mut self, server: ServerId, config: StoreConfig) -> Result<(), AdminError>;

    /// Schedules a major compaction of one partition on its current server
    /// (≈ 1 min/GB of background IO), after which its data is fully local.
    fn major_compact(&mut self, partition: PartitionId) -> Result<(), AdminError>;

    /// Requests a new server with the given configuration. The server
    /// becomes `Provisioning` and turns `Online` after the provider's boot
    /// delay (zero when managing the database directly, §4.3).
    fn provision_server(&mut self, config: StoreConfig) -> Result<ServerId, AdminError>;

    /// Decommissions a server. Its partitions must have been moved off
    /// first; the DFS re-replicates its blocks.
    fn decommission_server(&mut self, server: ServerId) -> Result<(), AdminError>;
}
