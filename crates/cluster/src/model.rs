//! The RegionServer performance model.
//!
//! We do not have the paper's physical testbed (Intel i3, 4 GB RAM, 7200 RPM
//! SATA, GbE), so server throughput is produced by a mechanistic cost model
//! whose inputs are the *same knobs the paper varies* (Table 1) and whose
//! structure reproduces the qualitative behaviours the paper exploits:
//!
//! * **Block cache**: steady-state hit ratio from a greedy
//!   hottest-bytes-first fill of the cache by access density — the standard
//!   LRU working-set approximation. More cache (read profile) or fewer
//!   competing partitions (grouping) → higher hit ratio.
//! * **Block size**: a random-read miss costs one seek plus one block
//!   transfer (small blocks win); a scan costs one seek per block spanned
//!   plus the sequential transfer (large blocks win). This is why Table 1
//!   gives 32 KiB to read profiles and 128 KiB to scan profiles.
//! * **Memstore**: write disk cost is the record size times a write
//!   amplification that grows as the effective flush size shrinks; a small
//!   memstore fraction shared by many write-hot partitions forces early
//!   flushes and more compaction churn. This is why write profiles get 55 %
//!   memstore.
//! * **Locality**: a miss on a non-local block pays network latency and
//!   transfer on top of the disk read; major compaction restores locality
//!   (§2.1, §5).
//! * **Shared resources**: CPU/handlers and the disk are queueing centres;
//!   flush/compaction IO contends with reads — co-locating write-hot and
//!   read-hot partitions hurts both, which is the mechanism behind the
//!   heterogeneous win of §3.
//!
//! Absolute constants are calibrated so cluster-level results land near the
//! paper's reported magnitudes; `EXPERIMENTS.md` records paper-vs-measured.

use crate::types::PartitionId;
use hstore::StoreConfig;
use serde::{Deserialize, Serialize};

/// Tunable cost constants (one instance per experiment; defaults calibrated
/// against the paper's §3 testbed scale).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostParams {
    /// CPU seconds of service capacity per wall second (cores).
    pub cpu_cores: f64,
    /// Handler threads cap concurrent requests; modelled as a throughput
    /// bound of `handlers / avg_service_time`.
    pub use_handler_bound: bool,
    /// CPU per point read, ms.
    pub cpu_read_ms: f64,
    /// CPU per write, ms.
    pub cpu_write_ms: f64,
    /// CPU per scanned row, ms.
    pub cpu_scan_row_ms: f64,
    /// Random-IO seek+rotate, ms.
    pub disk_seek_ms: f64,
    /// Sequential disk bandwidth, MB/s.
    pub disk_bw_mb_s: f64,
    /// Effective concurrent disk operations (NCQ etc.).
    pub disk_parallelism: f64,
    /// Network bandwidth for remote block reads, MB/s.
    pub net_bw_mb_s: f64,
    /// Network round-trip for a remote block read, ms.
    pub net_lat_ms: f64,
    /// Sequential-scan seek discount (read-ahead) in `[0, 1]`.
    pub scan_seek_discount: f64,
    /// Write-amplification base (flush itself).
    pub write_amp_base: f64,
    /// Extra write amplification per doubling of data/flush-size ratio
    /// (compaction churn).
    pub write_amp_factor: f64,
    /// Queue-inflation cap: response ≤ service × this.
    pub queue_inflation_cap: f64,
    /// Utilization at which queueing saturates.
    pub rho_cap: f64,
    /// Cache warm-up time constant, seconds (cold cache → steady state).
    pub warmup_s: f64,
    /// Major compaction throughput, MB/s (the paper observes ≈ 1 min/GB).
    pub compact_mb_s: f64,
    /// Partition unavailability while moving, seconds.
    pub move_outage_s: f64,
    /// Server restart duration, seconds.
    pub restart_s: f64,
    /// Response-time penalty per request to an unavailable partition, ms
    /// (clients block and retry).
    pub unavailable_penalty_ms: f64,
    /// Write-churn scale, MB/s: co-located write traffic at this rate
    /// halves the cache's steady-state quality (flush/compaction block
    /// invalidations plus heap pressure evicting the LRU — the reason the
    /// paper isolates write partitions on write-profile nodes).
    pub cache_churn_write_mb_s: f64,
    /// Write-stall latency scale, ms: when memstore pressure forces
    /// flushes far below the configured flush size, store files pile up
    /// and HBase blocks writers ("too many store files"). Each write pays
    /// this much extra latency per unit of flush-size shortfall. A large
    /// memstore fraction (the write profile) is the remedy.
    pub write_stall_ms: f64,
    /// Data bytes per write-active region equivalent, used to estimate how
    /// many memstores share the global budget.
    pub region_equiv_bytes: f64,
    /// CPU per cached block touched (decode + copy), ms — the service cost
    /// of a block-cache hit in [`crate::latency::op_service_ms`].
    pub cache_hit_block_ms: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_cores: 2.0,
            use_handler_bound: true,
            cpu_read_ms: 0.13,
            cpu_write_ms: 0.25,
            cpu_scan_row_ms: 0.02,
            disk_seek_ms: 3.0,
            disk_bw_mb_s: 100.0,
            disk_parallelism: 1.4,
            net_bw_mb_s: 110.0,
            net_lat_ms: 2.0,
            scan_seek_discount: 0.6,
            write_amp_base: 2.0,
            write_amp_factor: 2.0,
            queue_inflation_cap: 40.0,
            rho_cap: 0.98,
            warmup_s: 60.0,
            compact_mb_s: 17.0,
            move_outage_s: 3.0,
            restart_s: 25.0,
            unavailable_penalty_ms: 1_200.0,
            cache_churn_write_mb_s: 4.0,
            write_stall_ms: 0.7,
            region_equiv_bytes: 256e6,
            cache_hit_block_ms: 0.02,
        }
    }
}

/// Per-partition demand and data shape, the model's input.
#[derive(Debug, Clone)]
pub struct PartitionDemand {
    /// Partition identity.
    pub partition: PartitionId,
    /// Point reads per second.
    pub read_rps: f64,
    /// Writes per second.
    pub write_rps: f64,
    /// Scans per second.
    pub scan_rps: f64,
    /// Average rows returned per scan.
    pub scan_rows: f64,
    /// Average record size, bytes.
    pub record_bytes: f64,
    /// Logical data size, bytes.
    pub data_bytes: f64,
    /// Fraction of bytes forming the hot set.
    pub hot_set_fraction: f64,
    /// Fraction of accesses hitting the hot set.
    pub hot_ops_fraction: f64,
    /// Fraction of the partition's bytes local to its server.
    pub locality: f64,
    /// True while the partition is unavailable (moving).
    pub unavailable: bool,
    /// Per-write CPU efficiency factor: 1.0 for single-put RPCs (YCSB),
    /// lower when clients batch mutations (PyTPCC buffers a transaction's
    /// writes into one RPC).
    pub write_cpu_factor: f64,
}

/// Modelled per-op service (no queueing) and the cache hit ratio, per
/// partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionTimes {
    /// Point-read (cpu_ms, disk_ms).
    pub read: (f64, f64),
    /// Write (cpu_ms, disk_ms).
    pub write: (f64, f64),
    /// Scan (cpu_ms, disk_ms).
    pub scan: (f64, f64),
    /// Pure-latency write stall (flush storms), ms — blocks the writer
    /// without consuming modelled CPU or disk capacity.
    pub write_stall_ms: f64,
    /// Steady-state cache hit ratio for this partition's point reads.
    pub hit_ratio: f64,
    /// Steady-state cache hit ratio for this partition's scans.
    pub scan_hit_ratio: f64,
}

/// Evaluation of one server under a given demand.
#[derive(Debug, Clone)]
pub struct ServerEval {
    /// Per-partition times, in input order.
    pub per_partition: Vec<PartitionTimes>,
    /// CPU utilization before capping.
    pub rho_cpu: f64,
    /// Disk utilization before capping.
    pub rho_disk: f64,
    /// Memory utilization estimate in `[0, 1]`.
    pub mem_util: f64,
    /// Total requests per second in the demand.
    pub total_rps: f64,
}

/// Per-partition cache hit ratios: `(read_hit, scan_hit)`.
///
/// Point-read working sets fill the cache first, greedily by access
/// density (the LRU steady state). Scan data is kept only in what is left:
/// HBase's LruBlockCache gives streaming (single-access) blocks the lowest
/// priority, and a scan working set that does not *fit* in the leftover
/// space churns through it faster than blocks are re-touched — so scan
/// hits fall off sharply with coverage. On a dedicated scan node with no
/// competing point reads, the whole cache is leftover and scans hit.
pub fn cache_hit_ratios(cache_bytes: f64, parts: &[PartitionDemand]) -> Vec<(f64, f64)> {
    // Phase 1: point-read segments, densest first. Writes count toward a
    // segment's residency rank too: a freshly written row is readable from
    // the memstore and its block re-enters the cache on flush, so
    // read-after-write working sets (e.g. TPC-C stock) stay resident.
    let mut segments: Vec<(usize, f64, f64, f64)> = Vec::with_capacity(parts.len() * 2);
    for (i, p) in parts.iter().enumerate() {
        if p.read_rps <= 0.0 || p.data_bytes <= 0.0 {
            continue;
        }
        let hot_bytes = (p.data_bytes * p.hot_set_fraction).max(1.0);
        let cold_bytes = (p.data_bytes - hot_bytes).max(0.0);
        let rank_hot = (p.read_rps + p.write_rps) * p.hot_ops_fraction;
        let rank_cold = (p.read_rps + p.write_rps) * (1.0 - p.hot_ops_fraction);
        segments.push((i, hot_bytes, rank_hot, p.read_rps * p.hot_ops_fraction));
        if cold_bytes > 0.0 {
            segments.push((i, cold_bytes, rank_cold, p.read_rps * (1.0 - p.hot_ops_fraction)));
        }
    }
    segments.sort_by(|a, b| {
        let da = a.2 / a.1;
        let db = b.2 / b.1;
        db.partial_cmp(&da).expect("non-finite density")
    });
    let mut covered_rate = vec![0.0f64; parts.len()];
    let mut remaining = cache_bytes.max(0.0);
    for (idx, bytes, _rank, read_rate) in segments {
        if remaining <= 0.0 {
            break;
        }
        let frac = (remaining / bytes).min(1.0);
        covered_rate[idx] += read_rate * frac;
        remaining -= bytes * frac;
    }

    // Phase 2: scans share the leftover. A scan's reusable working set is
    // its hot bytes (scan start keys follow the partition's skew).
    let scan_ws: f64 = parts
        .iter()
        .filter(|p| p.scan_rps > 0.0)
        .map(|p| (p.data_bytes * p.hot_set_fraction.max(0.05)).max(1.0))
        .sum();
    let coverage = if scan_ws > 0.0 { (remaining / scan_ws).min(1.0) } else { 1.0 };
    // Churn makes partial coverage much worse than proportional: blocks
    // cycle out before they are re-touched.
    let scan_hit = coverage * coverage;

    parts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let read_hit =
                if p.read_rps <= 0.0 { 1.0 } else { (covered_rate[i] / p.read_rps).min(1.0) };
            let s = if p.scan_rps > 0.0 { scan_hit } else { 1.0 };
            (read_hit, s)
        })
        .collect()
}

/// Write amplification given partition data size and the effective flush
/// size the partition enjoys on this server.
pub fn write_amplification(params: &CostParams, data_bytes: f64, effective_flush: f64) -> f64 {
    let ratio = (data_bytes / effective_flush.max(1.0)).max(2.0);
    params.write_amp_base + params.write_amp_factor * ratio.log2()
}

/// Queue-inflation factor for utilization `rho`: `1/(1-rho)` capped.
pub fn queue_inflation(params: &CostParams, rho: f64) -> f64 {
    let rho = rho.clamp(0.0, params.rho_cap);
    (1.0 / (1.0 - rho)).min(params.queue_inflation_cap)
}

/// Evaluates one online server: per-partition service times, utilizations
/// and memory estimate.
///
/// `warmth ∈ [0, 1]` scales the cache capacity that is actually populated
/// (cold after restarts / invalidated by compactions); `background_mb_s` is
/// compaction / re-replication IO sharing the disk.
pub fn evaluate_server(
    params: &CostParams,
    config: &StoreConfig,
    warmth: f64,
    background_mb_s: f64,
    parts: &[PartitionDemand],
) -> ServerEval {
    // Only ~85 % of the configured cache holds data blocks (eviction
    // watermark, index/bloom blocks).
    const USABLE_CACHE_FRACTION: f64 = 0.85;
    let cache_bytes =
        config.block_cache_bytes() as f64 * USABLE_CACHE_FRACTION * warmth.clamp(0.0, 1.0);
    // Write churn: flushes and compactions continuously invalidate cached
    // blocks and put the heap under pressure, degrading the cache from its
    // ideal (density-ordered) residency toward an indiscriminate one.
    let churn_write_rate: f64 = parts.iter().map(|p| p.write_rps * p.record_bytes).sum();
    let calm = 1.0 / (1.0 + churn_write_rate / (params.cache_churn_write_mb_s * 1e6));
    // Residency under churn spreads over the data that read traffic
    // actually touches (write-only partitions pass through the cache).
    let total_data: f64 =
        parts.iter().filter(|p| p.read_rps > 0.0 || p.scan_rps > 0.0).map(|p| p.data_bytes).sum();
    let uniform_coverage = if total_data > 0.0 { (cache_bytes / total_data).min(1.0) } else { 1.0 };
    let hits: Vec<(f64, f64)> = cache_hit_ratios(cache_bytes, parts)
        .into_iter()
        .map(|(r, sc)| {
            (
                calm * r + (1.0 - calm) * uniform_coverage,
                sc * (calm + (1.0 - calm) * uniform_coverage),
            )
        })
        .collect();

    let block_mb = config.block_size as f64 / 1e6;
    let block_io_ms = params.disk_seek_ms + block_mb / params.disk_bw_mb_s * 1_000.0;
    let remote_ms = params.net_lat_ms + block_mb / params.net_bw_mb_s * 1_000.0;

    // Effective flush size: under sustained write pressure the global
    // memstore watermark forces flushes long before the per-region
    // threshold; the budget is shared by every write-active region (we
    // estimate the region count from data volume).
    let write_regions: f64 = parts
        .iter()
        .filter(|p| p.write_rps > 1.0)
        .map(|p| (p.data_bytes / params.region_equiv_bytes).ceil().max(1.0))
        .sum::<f64>()
        .max(1.0);
    let effective_flush = (config.memstore_bytes() as f64 * 0.5 / write_regions)
        .min(config.memstore_flush_bytes as f64);
    // Flush-storm stall: latency per write grows with the shortfall
    // between the configured flush size and what pressure allows.
    let stall_ms = params.write_stall_ms
        * (config.memstore_flush_bytes as f64 / effective_flush - 1.0).max(0.0);

    let mut per_partition = Vec::with_capacity(parts.len());
    let mut cpu_ms_per_s = 0.0;
    let mut disk_ms_per_s = 0.0;
    let mut total_rps = 0.0;
    let mut write_byte_rate = 0.0;

    for (p, &(hit, scan_hit)) in parts.iter().zip(&hits) {
        let miss = 1.0 - hit;
        let scan_miss = 1.0 - scan_hit;
        let remote_frac = 1.0 - p.locality.clamp(0.0, 1.0);

        // Point read: one block IO on miss, plus network when non-local.
        let read_disk = miss * (block_io_ms + remote_frac * remote_ms);
        let read = (params.cpu_read_ms, read_disk);

        // Write: memstore insert (CPU, amortized by client batching) +
        // amortized flush/compaction IO.
        let wa = write_amplification(params, p.data_bytes, effective_flush);
        let write_disk = wa * (p.record_bytes / 1e6) / params.disk_bw_mb_s * 1_000.0;
        let write = (params.cpu_write_ms * p.write_cpu_factor.clamp(0.05, 1.0), write_disk);

        // Scan: per-row CPU; on miss, one discounted seek per block spanned
        // plus the sequential transfer (remote adds network transfer).
        let scan_bytes = p.scan_rows.max(1.0) * p.record_bytes;
        let blocks = (scan_bytes / config.block_size as f64).max(1.0);
        let scan_disk = scan_miss
            * (blocks * params.disk_seek_ms * params.scan_seek_discount
                + scan_bytes / 1e6 / params.disk_bw_mb_s * 1_000.0
                + remote_frac
                    * (params.net_lat_ms + scan_bytes / 1e6 / params.net_bw_mb_s * 1_000.0));
        let scan = (p.scan_rows.max(1.0) * params.cpu_scan_row_ms, scan_disk);

        cpu_ms_per_s += p.read_rps * read.0 + p.write_rps * write.0 + p.scan_rps * scan.0;
        disk_ms_per_s += p.read_rps * read.1 + p.write_rps * write.1 + p.scan_rps * scan.1;
        total_rps += p.read_rps + p.write_rps + p.scan_rps;
        write_byte_rate += p.write_rps * p.record_bytes;

        per_partition.push(PartitionTimes {
            read,
            write,
            scan,
            write_stall_ms: stall_ms,
            hit_ratio: hit,
            scan_hit_ratio: scan_hit,
        });
    }

    let rho_cpu = cpu_ms_per_s / 1_000.0 / params.cpu_cores;
    let rho_disk = disk_ms_per_s / 1_000.0 / params.disk_parallelism
        + background_mb_s / params.disk_bw_mb_s / params.disk_parallelism;

    // Memory: populated cache plus memstore fill pressure (30 s of writes,
    // capped at the memstore budget), over the heap.
    let memstore_fill = (write_byte_rate * 30.0).min(config.memstore_bytes() as f64);
    let mem_util = ((cache_bytes + memstore_fill) / config.heap_bytes as f64).min(1.0);

    ServerEval { per_partition, rho_cpu, rho_disk, mem_util, total_rps }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(reads: f64, writes: f64, scans: f64) -> PartitionDemand {
        PartitionDemand {
            partition: PartitionId(1),
            read_rps: reads,
            write_rps: writes,
            scan_rps: scans,
            scan_rows: 50.0,
            record_bytes: 1_000.0,
            data_bytes: 1.5e9,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
            locality: 1.0,
            unavailable: false,
            write_cpu_factor: 1.0,
        }
    }

    fn cfg() -> StoreConfig {
        StoreConfig::default_homogeneous()
    }

    #[test]
    fn bigger_cache_means_higher_hit_ratio() {
        let parts = vec![demand(1_000.0, 0.0, 0.0)];
        let (small, _) = cache_hit_ratios(0.2e9, &parts)[0];
        let (large, _) = cache_hit_ratios(1.2e9, &parts)[0];
        assert!(large > small, "large {large} ≤ small {small}");
        assert!(large <= 1.0 && small >= 0.0);
    }

    #[test]
    fn cache_fully_covering_data_hits_everything() {
        let parts = vec![demand(100.0, 0.0, 0.0)];
        let (hit, _) = cache_hit_ratios(2e9, &parts)[0];
        assert!((hit - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hot_partition_wins_cache_over_cold() {
        let mut hot = demand(10_000.0, 0.0, 0.0);
        hot.partition = PartitionId(1);
        let mut cold = demand(10.0, 0.0, 0.0);
        cold.partition = PartitionId(2);
        // Cache fits roughly one hot set.
        let hits = cache_hit_ratios(0.6e9, &[hot, cold]);
        assert!(hits[0].0 > hits[1].0, "hot {} should out-hit cold {}", hits[0].0, hits[1].0);
    }

    #[test]
    fn idle_partition_reports_full_hit() {
        let hits = cache_hit_ratios(1e9, &[demand(0.0, 100.0, 0.0)]);
        assert_eq!(hits[0].0, 1.0);
    }

    #[test]
    fn scans_hit_only_when_their_working_set_fits_the_leftover() {
        // A scan partition alone on the node keeps the cache.
        let alone = vec![demand(0.0, 0.0, 100.0)];
        let (_, scan_alone) = cache_hit_ratios(1.5e9, &alone)[0];
        assert!(scan_alone > 0.9, "dedicated scan node should hit: {scan_alone}");
        // The same partition sharing with a hot point-read tenant loses it.
        let mut reader = demand(10_000.0, 0.0, 0.0);
        reader.partition = PartitionId(2);
        let shared = vec![demand(0.0, 0.0, 100.0), reader];
        let (_, scan_shared) = cache_hit_ratios(1.0e9, &shared)[0];
        assert!(
            scan_shared < scan_alone,
            "scans must lose the cache to point reads: {scan_shared} vs {scan_alone}"
        );
    }

    #[test]
    fn writes_pin_residency_for_read_after_write_working_sets() {
        // Two partitions with equal (small) read rates; one is also
        // write-hot. With cache for only one hot set, the written one stays
        // resident.
        let mut rw = demand(500.0, 2_000.0, 0.0);
        rw.partition = PartitionId(1);
        let mut ro = demand(500.0, 0.0, 0.0);
        ro.partition = PartitionId(2);
        let hits = cache_hit_ratios(0.6e9, &[rw, ro]);
        assert!(hits[0].0 > hits[1].0, "write-pinned should win: {hits:?}");
    }

    #[test]
    fn write_stall_shrinks_with_bigger_memstore() {
        let p = CostParams::default();
        let parts: Vec<PartitionDemand> = (0..6)
            .map(|i| {
                let mut d = demand(0.0, 300.0, 0.0);
                d.partition = PartitionId(i);
                d
            })
            .collect();
        let mut small = cfg();
        small.block_cache_fraction = 0.10;
        small.memstore_fraction = 0.15;
        let mut large = cfg();
        large.block_cache_fraction = 0.10;
        large.memstore_fraction = 0.55;
        let es = evaluate_server(&p, &small, 1.0, 0.0, &parts);
        let el = evaluate_server(&p, &large, 1.0, 0.0, &parts);
        assert!(
            es.per_partition[0].write_stall_ms > el.per_partition[0].write_stall_ms,
            "small memstore must stall more: {} vs {}",
            es.per_partition[0].write_stall_ms,
            el.per_partition[0].write_stall_ms
        );
    }

    #[test]
    fn write_amp_grows_with_smaller_flush() {
        let p = CostParams::default();
        let small = write_amplification(&p, 1e9, 16e6);
        let large = write_amplification(&p, 1e9, 256e6);
        assert!(small > large);
        assert!(large >= p.write_amp_base);
    }

    #[test]
    fn queue_inflation_monotone_and_capped() {
        let p = CostParams::default();
        assert!(queue_inflation(&p, 0.0) >= 1.0);
        assert!(queue_inflation(&p, 0.5) > queue_inflation(&p, 0.1));
        assert!(queue_inflation(&p, 2.0) <= p.queue_inflation_cap);
    }

    #[test]
    fn read_profile_beats_write_profile_for_reads() {
        let p = CostParams::default();
        let parts = vec![demand(2_000.0, 0.0, 0.0)];
        let mut read_cfg = cfg();
        read_cfg.block_cache_fraction = 0.55;
        read_cfg.memstore_fraction = 0.10;
        read_cfg.block_size = 32 * 1024;
        let mut write_cfg = cfg();
        write_cfg.block_cache_fraction = 0.10;
        write_cfg.memstore_fraction = 0.55;
        let er = evaluate_server(&p, &read_cfg, 1.0, 0.0, &parts);
        let ew = evaluate_server(&p, &write_cfg, 1.0, 0.0, &parts);
        let disk_r = er.per_partition[0].read.1;
        let disk_w = ew.per_partition[0].read.1;
        assert!(disk_r < disk_w, "read profile disk {disk_r} ≥ write profile {disk_w}");
        assert!(er.rho_disk < ew.rho_disk);
    }

    #[test]
    fn write_profile_beats_read_profile_for_writes() {
        // Several write-hot partitions share the global memstore budget;
        // a small memstore fraction then forces early flushes (higher write
        // amplification). With a single partition the per-region flush cap
        // dominates and the profiles tie.
        let p = CostParams::default();
        let parts: Vec<PartitionDemand> = (0..12)
            .map(|i| {
                let mut d = demand(0.0, 250.0, 0.0);
                d.partition = PartitionId(i);
                d
            })
            .collect();
        let mut read_cfg = cfg();
        read_cfg.block_cache_fraction = 0.55;
        read_cfg.memstore_fraction = 0.10;
        let mut write_cfg = cfg();
        write_cfg.block_cache_fraction = 0.10;
        write_cfg.memstore_fraction = 0.55;
        let er = evaluate_server(&p, &read_cfg, 1.0, 0.0, &parts);
        let ew = evaluate_server(&p, &write_cfg, 1.0, 0.0, &parts);
        assert!(
            ew.per_partition[0].write.1 < er.per_partition[0].write.1,
            "write profile should flush less often"
        );
    }

    #[test]
    fn large_blocks_help_scans_hurt_random_reads() {
        let p = CostParams::default();
        let scan_parts = vec![demand(0.0, 0.0, 100.0)];
        let read_parts = vec![demand(1_000.0, 0.0, 0.0)];
        let mut small = cfg();
        small.block_size = 32 * 1024;
        let mut large = cfg();
        large.block_size = 128 * 1024;
        // Warmth 0 → all misses, isolating the IO path.
        let scan_small = evaluate_server(&p, &small, 0.0, 0.0, &scan_parts).per_partition[0].scan.1;
        let scan_large = evaluate_server(&p, &large, 0.0, 0.0, &scan_parts).per_partition[0].scan.1;
        assert!(scan_large < scan_small, "scans: large {scan_large} ≥ small {scan_small}");
        let rd_small = evaluate_server(&p, &small, 0.0, 0.0, &read_parts).per_partition[0].read.1;
        let rd_large = evaluate_server(&p, &large, 0.0, 0.0, &read_parts).per_partition[0].read.1;
        assert!(rd_small < rd_large, "reads: small {rd_small} ≥ large {rd_large}");
    }

    #[test]
    fn remote_data_costs_more_than_local() {
        let p = CostParams::default();
        let mut local = demand(1_000.0, 0.0, 0.0);
        local.locality = 1.0;
        let mut remote = local.clone();
        remote.locality = 0.0;
        let el = evaluate_server(&p, &cfg(), 0.0, 0.0, &[local]);
        let er = evaluate_server(&p, &cfg(), 0.0, 0.0, &[remote]);
        assert!(er.per_partition[0].read.1 > el.per_partition[0].read.1);
    }

    #[test]
    fn background_io_raises_disk_utilization() {
        let p = CostParams::default();
        let parts = vec![demand(100.0, 0.0, 0.0)];
        let quiet = evaluate_server(&p, &cfg(), 1.0, 0.0, &parts);
        let busy = evaluate_server(&p, &cfg(), 1.0, 50.0, &parts);
        assert!(busy.rho_disk > quiet.rho_disk + 0.3);
    }

    #[test]
    fn cold_cache_degrades_reads() {
        let p = CostParams::default();
        let parts = vec![demand(1_000.0, 0.0, 0.0)];
        let warm = evaluate_server(&p, &cfg(), 1.0, 0.0, &parts);
        let cold = evaluate_server(&p, &cfg(), 0.0, 0.0, &parts);
        assert!(cold.per_partition[0].read.1 > warm.per_partition[0].read.1);
        assert!(cold.per_partition[0].hit_ratio < warm.per_partition[0].hit_ratio);
    }

    #[test]
    fn mem_util_tracks_write_pressure() {
        let p = CostParams::default();
        let idle = evaluate_server(&p, &cfg(), 1.0, 0.0, &[demand(10.0, 0.0, 0.0)]);
        let writing = evaluate_server(&p, &cfg(), 1.0, 0.0, &[demand(0.0, 5_000.0, 0.0)]);
        assert!(writing.mem_util > idle.mem_util);
        assert!(writing.mem_util <= 1.0);
    }
}
