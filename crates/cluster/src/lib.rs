#![warn(missing_docs)]

//! The distributed NoSQL cluster substrate of the MeT reproduction.
//!
//! Two cooperating layers:
//!
//! * [`functional`] — a real distributed table store over
//!   [`hstore`] regions: routing by row key, region splits, moves, per-server
//!   block caches. Used by the YCSB/TPC-C drivers and examples to prove the
//!   substrate actually stores and serves data.
//! * [`sim`] — the tick-driven cluster simulation used by the experiments:
//!   metadata partitions, the mechanistic performance model of [`model`],
//!   simulated HDFS locality, and the management actions whose costs the
//!   paper measures (restarts, moves, major compactions, provisioning).
//!
//! Control planes (MeT, tiramola, the manual strategies) drive either layer
//! through the [`admin::ElasticCluster`] trait — Fig. 2's NoSQL interface.

pub mod admin;
pub mod functional;
pub mod functional_elastic;
pub mod latency;
pub mod model;
pub mod sim;
pub mod types;

pub use admin::{
    AdminError, ClusterSnapshot, ElasticCluster, PartitionMetrics, ServerHealth, ServerMetrics,
};
pub use functional_elastic::FunctionalElastic;
pub use latency::{op_service_ms, LatencyMixture, LatencySummary};
pub use model::{CostParams, PartitionDemand};
pub use sim::{ClientGroup, PartitionSpec, SimCluster};
pub use types::{OpKind, OpMix, PartitionCounters, PartitionId, ServerId};
