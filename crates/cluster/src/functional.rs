//! A functional distributed table store over real `hstore` regions.
//!
//! This is the "it actually stores data" layer: tables are pre-split into
//! regions, regions are assigned to servers (each with its own shared block
//! cache sized by its [`StoreConfig`]), operations route by row key, and
//! maintenance runs flushes, minor compactions and automatic splits.
//! The YCSB and TPC-C drivers run real operations against this layer to
//! validate workload logic; the performance experiments use the metadata
//! simulation in [`crate::sim`], which models the same mechanisms at cluster
//! scale.

use crate::admin::AdminError;
use crate::types::ServerId;
use bytes::Bytes;
use hstore::{
    Family, FileIdAllocator, KeyRange, MaintenanceConfig, MaintenanceSnapshot, OpStats, Qualifier,
    Region, RegionCounters, RegionId, RowKey, SharedBlockCache, StoreConfig, StoreError,
};
use simcore::SimRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Errors from the functional layer.
#[derive(Debug)]
pub enum FunctionalError {
    /// Unknown table.
    UnknownTable(String),
    /// No region covers the row (catalog corruption — should not happen).
    NoRegionForRow(RowKey),
    /// Underlying storage error.
    Store(StoreError),
    /// Management error.
    Admin(AdminError),
}

impl std::fmt::Display for FunctionalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FunctionalError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            FunctionalError::NoRegionForRow(r) => write!(f, "no region covers row '{r}'"),
            FunctionalError::Store(e) => write!(f, "storage error: {e}"),
            FunctionalError::Admin(e) => write!(f, "admin error: {e}"),
        }
    }
}

impl std::error::Error for FunctionalError {}

impl From<StoreError> for FunctionalError {
    fn from(e: StoreError) -> Self {
        FunctionalError::Store(e)
    }
}

impl From<AdminError> for FunctionalError {
    fn from(e: AdminError) -> Self {
        FunctionalError::Admin(e)
    }
}

/// Result alias for functional-layer calls.
pub type FResult<T> = Result<T, FunctionalError>;

struct FunctionalServer {
    config: StoreConfig,
    cache: SharedBlockCache,
    regions: BTreeMap<RegionId, Region>,
}

struct TableMeta {
    families: Vec<Family>,
    // Region start key (None = table start) → region id, sorted so the
    // region covering a row is the last entry with start ≤ row.
    regions: BTreeMap<Option<RowKey>, RegionId>,
}

/// A whole functional cluster.
pub struct FunctionalCluster {
    servers: BTreeMap<ServerId, FunctionalServer>,
    tables: BTreeMap<String, TableMeta>,
    assignment: BTreeMap<RegionId, ServerId>,
    ids: Arc<FileIdAllocator>,
    next_region: u64,
    next_server: u64,
    rng: SimRng,
    /// When set, every region (current and future — splits, moves, new
    /// tables) runs the background maintenance pipeline with this config.
    bg_maintenance: Option<MaintenanceConfig>,
}

impl FunctionalCluster {
    /// Creates an empty cluster.
    pub fn new(seed: u64) -> Self {
        FunctionalCluster {
            servers: BTreeMap::new(),
            tables: BTreeMap::new(),
            assignment: BTreeMap::new(),
            ids: FileIdAllocator::new(),
            next_region: 1,
            next_server: 1,
            rng: SimRng::new(seed).derive("functional"),
            bg_maintenance: None,
        }
    }

    /// Adds a server with the given configuration.
    pub fn add_server(&mut self, config: StoreConfig) -> FResult<ServerId> {
        config.validate().map_err(|e| AdminError::BadConfig(e.to_string()))?;
        let id = ServerId(self.next_server);
        self.next_server += 1;
        let cache = SharedBlockCache::new(config.block_cache_bytes());
        self.servers.insert(id, FunctionalServer { config, cache, regions: BTreeMap::new() });
        Ok(id)
    }

    /// Server ids in order.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.keys().copied().collect()
    }

    /// Creates a table pre-split at `split_keys`, assigning regions to
    /// servers with HBase's randomized even-count placement.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        families: &[Family],
        split_keys: &[RowKey],
    ) -> FResult<Vec<RegionId>> {
        let name = name.into();
        assert!(!self.tables.contains_key(&name), "table '{name}' already exists");
        assert!(!self.servers.is_empty(), "create servers before tables");
        let mut sorted = split_keys.to_vec();
        sorted.sort();
        sorted.dedup();

        // Build region ranges: (None..k1), [k1..k2), ..., [kn..None).
        let mut bounds: Vec<Option<RowKey>> = vec![None];
        bounds.extend(sorted.into_iter().map(Some));
        let mut region_ids = Vec::new();
        let mut meta = TableMeta { families: families.to_vec(), regions: BTreeMap::new() };

        // Randomized even placement: shuffle server order, round-robin.
        let mut order: Vec<ServerId> = self.servers.keys().copied().collect();
        self.rng.shuffle(&mut order);

        for (i, start) in bounds.iter().enumerate() {
            let end = bounds.get(i + 1).cloned().flatten();
            let range = KeyRange::new(start.clone(), end);
            let rid = RegionId(self.next_region);
            self.next_region += 1;
            let server_id = order[i % order.len()];
            let server = self.servers.get_mut(&server_id).expect("server vanished");
            let mut region = Region::new(
                rid,
                name.clone(),
                range,
                families,
                server.cache.clone(),
                self.ids.clone(),
                server.config.block_size,
                server.config.memstore_flush_bytes,
            );
            if let Some(cfg) = self.bg_maintenance {
                region.enable_background_maintenance(cfg);
            }
            server.regions.insert(rid, region);
            self.assignment.insert(rid, server_id);
            meta.regions.insert(start.clone(), rid);
            region_ids.push(rid);
        }
        self.tables.insert(name, meta);
        Ok(region_ids)
    }

    fn locate(&self, table: &str, row: &RowKey) -> FResult<(RegionId, ServerId)> {
        let meta =
            self.tables.get(table).ok_or_else(|| FunctionalError::UnknownTable(table.into()))?;
        // Last region whose start ≤ row. `None` start sorts first.
        let rid = meta
            .regions
            .range(..=Some(row.clone()))
            .next_back()
            .map(|(_, r)| *r)
            .ok_or_else(|| FunctionalError::NoRegionForRow(row.clone()))?;
        let sid = *self.assignment.get(&rid).expect("region without assignment");
        Ok((rid, sid))
    }

    fn region_mut(&mut self, rid: RegionId, sid: ServerId) -> &mut Region {
        self.servers
            .get_mut(&sid)
            .expect("assignment points at missing server")
            .regions
            .get_mut(&rid)
            .expect("assignment points at missing region")
    }

    fn region_ref(&self, rid: RegionId, sid: ServerId) -> &Region {
        self.servers
            .get(&sid)
            .expect("assignment points at missing server")
            .regions
            .get(&rid)
            .expect("assignment points at missing region")
    }

    /// Writes a cell.
    pub fn put(
        &mut self,
        table: &str,
        family: &Family,
        row: RowKey,
        qualifier: Qualifier,
        value: Bytes,
    ) -> FResult<()> {
        self.put_with_stats(table, family, row, qualifier, value).map(|_| ())
    }

    /// [`FunctionalCluster::put`] reporting the op's work for service-time
    /// costing (a put is a memstore insert).
    pub fn put_with_stats(
        &mut self,
        table: &str,
        family: &Family,
        row: RowKey,
        qualifier: Qualifier,
        value: Bytes,
    ) -> FResult<OpStats> {
        let (rid, sid) = self.locate(table, &row)?;
        Ok(self.region_mut(rid, sid).put_with_stats(family, row, qualifier, value)?)
    }

    /// Reads a cell.
    pub fn get(
        &self,
        table: &str,
        family: &Family,
        row: &RowKey,
        qualifier: &Qualifier,
    ) -> FResult<Option<Bytes>> {
        self.get_with_stats(table, family, row, qualifier).map(|(v, _)| v)
    }

    /// [`FunctionalCluster::get`] reporting which blocks the read touched
    /// (cache hits vs. disk block reads) and whether the memstore answered
    /// it — the per-op counts service-time costing needs. Counted on the
    /// op's own path: a before/after delta of the server's shared
    /// [`hstore::CacheStats`] would charge this op with any concurrently
    /// interleaved operation's traffic.
    pub fn get_with_stats(
        &self,
        table: &str,
        family: &Family,
        row: &RowKey,
        qualifier: &Qualifier,
    ) -> FResult<(Option<Bytes>, OpStats)> {
        let (rid, sid) = self.locate(table, row)?;
        Ok(self.region_ref(rid, sid).get_with_stats(family, row, qualifier)?)
    }

    /// Atomic compare-and-put on a cell.
    pub fn check_and_put(
        &mut self,
        table: &str,
        family: &Family,
        row: RowKey,
        qualifier: Qualifier,
        expected: Option<&Bytes>,
        new: Bytes,
    ) -> FResult<bool> {
        let (rid, sid) = self.locate(table, &row)?;
        Ok(self
            .region_mut(rid, sid)
            .check_and_put_with_stats(family, row, qualifier, expected, new)?
            .0)
    }

    /// Atomic numeric increment of a cell.
    pub fn increment(
        &mut self,
        table: &str,
        family: &Family,
        row: RowKey,
        qualifier: Qualifier,
        delta: i64,
    ) -> FResult<i64> {
        self.increment_with_stats(table, family, row, qualifier, delta).map(|(v, _)| v)
    }

    /// [`FunctionalCluster::increment`] reporting the read-modify-write's
    /// work (see [`FunctionalCluster::get_with_stats`]).
    pub fn increment_with_stats(
        &mut self,
        table: &str,
        family: &Family,
        row: RowKey,
        qualifier: Qualifier,
        delta: i64,
    ) -> FResult<(i64, OpStats)> {
        let (rid, sid) = self.locate(table, &row)?;
        Ok(self.region_mut(rid, sid).increment_with_stats(family, row, qualifier, delta)?)
    }

    /// Deletes a cell.
    pub fn delete(
        &mut self,
        table: &str,
        family: &Family,
        row: RowKey,
        qualifier: Qualifier,
    ) -> FResult<()> {
        let (rid, sid) = self.locate(table, &row)?;
        self.region_mut(rid, sid).delete(family, row, qualifier)?;
        Ok(())
    }

    /// Scans up to `row_limit` rows from `start`, crossing region
    /// boundaries as HBase's client scanner does.
    pub fn scan(
        &self,
        table: &str,
        family: &Family,
        start: &RowKey,
        row_limit: usize,
    ) -> FResult<Vec<hstore::types::RowCells>> {
        self.scan_with_stats(table, family, start, row_limit).map(|(rows, _)| rows)
    }

    /// [`FunctionalCluster::scan`] reporting the blocks this scan entered
    /// across every region it crossed. Each region's work is counted on the
    /// scan's own merge iterators, so two scans interleaved on the same
    /// server each see only their own block reads (see
    /// [`FunctionalCluster::get_with_stats`]).
    pub fn scan_with_stats(
        &self,
        table: &str,
        family: &Family,
        start: &RowKey,
        row_limit: usize,
    ) -> FResult<(Vec<hstore::types::RowCells>, OpStats)> {
        let mut out = Vec::new();
        let mut stats = OpStats::default();
        let mut cursor = start.clone();
        loop {
            let (rid, sid) = self.locate(table, &cursor)?;
            let region = self.region_ref(rid, sid);
            let end = region.range().end.clone();
            // Saturating: a region handing back more rows than asked would
            // otherwise underflow this in the next iteration (debug builds
            // panic on unsigned wrap).
            let (rows, region_stats) =
                region.scan_with_stats(family, &cursor, row_limit.saturating_sub(out.len()))?;
            out.extend(rows);
            stats.absorb(region_stats);
            if out.len() >= row_limit {
                break;
            }
            match end {
                // Continue into the next region.
                Some(next_start) => cursor = next_start,
                None => break,
            }
        }
        Ok((out, stats))
    }

    /// Switches every region — current and future — onto the background
    /// maintenance pipeline: flushes and compactions run on dedicated
    /// threads per store and the write path only pays backpressure.
    /// [`FunctionalCluster::maintenance`] keeps handling splits; its
    /// inline flush/compact passes stand down per region automatically.
    pub fn enable_background_maintenance(&mut self, cfg: MaintenanceConfig) {
        self.bg_maintenance = Some(cfg);
        for server in self.servers.values_mut() {
            for region in server.regions.values_mut() {
                region.enable_background_maintenance(cfg);
            }
        }
    }

    /// Drains and stops every region's background pipeline; the cluster
    /// reverts to inline maintenance (including for future regions).
    pub fn disable_background_maintenance(&mut self) {
        self.bg_maintenance = None;
        for server in self.servers.values_mut() {
            for region in server.regions.values_mut() {
                region.disable_background_maintenance();
            }
        }
    }

    /// Whether regions run the background maintenance pipeline.
    pub fn background_maintenance_enabled(&self) -> bool {
        self.bg_maintenance.is_some()
    }

    /// Quiesce: blocks until every region's queued background work has
    /// published. Benchmarks call this before measuring final state.
    pub fn drain_background_maintenance(&mut self) {
        for server in self.servers.values_mut() {
            for region in server.regions.values_mut() {
                region.drain_background_maintenance();
            }
        }
    }

    /// One region's aggregated maintenance pressure (stall time, queue
    /// depth, debt), if it runs the background pipeline.
    pub fn region_maintenance_pressure(&self, rid: RegionId) -> Option<MaintenanceSnapshot> {
        let sid = self.assignment.get(&rid)?;
        self.region_ref(rid, *sid).maintenance_pressure()
    }

    /// Runs maintenance on every server: threshold flushes, minor
    /// compactions, and automatic splits of oversized regions. Returns the
    /// number of splits performed.
    pub fn maintenance(&mut self) -> usize {
        let mut splits = 0;
        let sids: Vec<ServerId> = self.servers.keys().copied().collect();
        for sid in sids {
            let (threshold, split_bytes) = {
                let s = &self.servers[&sid];
                (s.config.compaction_threshold, s.config.region_split_bytes)
            };
            let rids: Vec<RegionId> = self.servers[&sid].regions.keys().copied().collect();
            for rid in rids {
                {
                    let region = self.region_mut(rid, sid);
                    region.maybe_flush();
                    region.maybe_compact(threshold);
                }
                if self.servers[&sid].regions[&rid].size_bytes() > split_bytes
                    && self.split_region(rid).is_ok()
                {
                    splits += 1;
                }
            }
        }
        splits
    }

    /// Splits a region at its byte-midpoint; daughters stay on the same
    /// server (HBase behaviour — the balancer may move them later).
    pub fn split_region(&mut self, rid: RegionId) -> FResult<(RegionId, RegionId)> {
        let sid = *self
            .assignment
            .get(&rid)
            .ok_or(AdminError::UnknownPartition(crate::types::PartitionId(rid.0)))?;
        let server = self.servers.get_mut(&sid).expect("assignment broken");
        let region = server.regions.get_mut(&rid).expect("assignment broken");
        // Quiesce the background pipeline so the split exports a stable
        // file set (and the daughters start with no debt).
        region.drain_background_maintenance();
        let Some(mid) = region.split_point() else {
            return Err(FunctionalError::Store(StoreError::BadSplitPoint(
                "no usable split point".into(),
            )));
        };
        let table = region.table().to_string();
        let start = region.range().start.clone();
        let lo_id = RegionId(self.next_region);
        let hi_id = RegionId(self.next_region + 1);
        self.next_region += 2;

        let region = server.regions.remove(&rid).expect("just looked up");
        let (mut lo, mut hi) = region.split(
            mid.clone(),
            lo_id,
            hi_id,
            server.cache.clone(),
            self.ids.clone(),
            server.config.block_size,
        )?;
        if let Some(cfg) = self.bg_maintenance {
            lo.enable_background_maintenance(cfg);
            hi.enable_background_maintenance(cfg);
        }
        server.regions.insert(lo_id, lo);
        server.regions.insert(hi_id, hi);
        self.assignment.remove(&rid);
        self.assignment.insert(lo_id, sid);
        self.assignment.insert(hi_id, sid);

        let meta = self.tables.get_mut(&table).expect("region of unknown table");
        meta.regions.remove(&start);
        meta.regions.insert(start, lo_id);
        meta.regions.insert(Some(mid), hi_id);
        Ok((lo_id, hi_id))
    }

    /// Moves a region to another server. The region's data is re-homed by
    /// exporting and rebuilding (the simulation layer models the locality
    /// cost; here we preserve functional correctness).
    pub fn move_region(&mut self, rid: RegionId, to: ServerId) -> FResult<()> {
        let from = *self
            .assignment
            .get(&rid)
            .ok_or(AdminError::UnknownPartition(crate::types::PartitionId(rid.0)))?;
        if from == to {
            return Ok(());
        }
        if !self.servers.contains_key(&to) {
            return Err(AdminError::UnknownServer(to).into());
        }
        let mut region = self
            .servers
            .get_mut(&from)
            .expect("assignment broken")
            .regions
            .remove(&rid)
            .expect("assignment broken");
        // Close: flush so all data is in immutable files.
        region.flush_all();
        let dst = self.servers.get_mut(&to).expect("just checked");
        // Rebuild the region against the destination's cache/config.
        let mut rebuilt = rebuild_region(region, dst, self.ids.clone());
        if let Some(cfg) = self.bg_maintenance {
            rebuilt.enable_background_maintenance(cfg);
        }
        dst.regions.insert(rid, rebuilt);
        self.assignment.insert(rid, to);
        Ok(())
    }

    /// The server currently holding a region.
    pub fn region_server(&self, rid: RegionId) -> Option<ServerId> {
        self.assignment.get(&rid).copied()
    }

    /// The declared column families of a table.
    pub fn table_families(&self, table: &str) -> Vec<Family> {
        self.tables.get(table).map(|m| m.families.clone()).unwrap_or_default()
    }

    /// Major-compacts every family of a region in place.
    pub fn major_compact_region(&mut self, rid: RegionId) -> FResult<u64> {
        let sid = *self
            .assignment
            .get(&rid)
            .ok_or(AdminError::UnknownPartition(crate::types::PartitionId(rid.0)))?;
        let region = self
            .servers
            .get_mut(&sid)
            .expect("assignment broken")
            .regions
            .get_mut(&rid)
            .expect("assignment broken");
        region.flush_all();
        Ok(region.major_compact().iter().map(|o| o.bytes_rewritten).sum())
    }

    /// Replaces a server's storage configuration, rebuilding its block
    /// cache and every hosted region against the new parameters — the
    /// functional equivalent of an HBase RegionServer restart with a new
    /// configuration (data survives; the cache starts cold).
    pub fn reconfigure_server(&mut self, sid: ServerId, config: StoreConfig) -> FResult<()> {
        config.validate().map_err(|e| AdminError::BadConfig(e.to_string()))?;
        if !self.servers.contains_key(&sid) {
            return Err(AdminError::UnknownServer(sid).into());
        }
        let rids: Vec<RegionId> = self.servers[&sid].regions.keys().copied().collect();
        // Swap in the new cache/config first.
        {
            let server = self.servers.get_mut(&sid).expect("checked above");
            server.cache = SharedBlockCache::new(config.block_cache_bytes());
            server.config = config;
        }
        // Rebuild each region against the new block size and cache.
        for rid in rids {
            let region =
                self.servers.get_mut(&sid).expect("checked").regions.remove(&rid).expect("listed");
            let dst = self.servers.get_mut(&sid).expect("checked");
            let mut rebuilt = rebuild_region(region, dst, self.ids.clone());
            if let Some(cfg) = self.bg_maintenance {
                rebuilt.enable_background_maintenance(cfg);
            }
            dst.regions.insert(rid, rebuilt);
        }
        Ok(())
    }

    /// Removes a server, reassigning its regions round-robin to the
    /// remaining servers (what the HBase master does when a RegionServer
    /// is decommissioned).
    pub fn remove_server(&mut self, sid: ServerId) -> FResult<()> {
        if !self.servers.contains_key(&sid) {
            return Err(AdminError::UnknownServer(sid).into());
        }
        let survivors: Vec<ServerId> = self.servers.keys().copied().filter(|s| *s != sid).collect();
        if survivors.is_empty() {
            return Err(AdminError::LastServer.into());
        }
        let rids: Vec<RegionId> = self.servers[&sid].regions.keys().copied().collect();
        for (i, rid) in rids.iter().enumerate() {
            self.move_region(*rid, survivors[i % survivors.len()])?;
        }
        self.servers.remove(&sid);
        Ok(())
    }

    /// The server's current storage configuration.
    pub fn server_config(&self, sid: ServerId) -> Option<StoreConfig> {
        self.servers.get(&sid).map(|s| s.config.clone())
    }

    /// Block-cache usage `(used, capacity)` in bytes for a server.
    pub fn server_cache_usage(&self, sid: ServerId) -> Option<(u64, u64)> {
        self.servers.get(&sid).map(|s| (s.cache.used_bytes(), s.cache.capacity_bytes()))
    }

    /// Every region id with its current server.
    pub fn all_regions(&self) -> Vec<(RegionId, ServerId)> {
        self.assignment.iter().map(|(r, s)| (*r, *s)).collect()
    }

    /// The table a region belongs to.
    pub fn region_table(&self, rid: RegionId) -> Option<String> {
        let sid = self.assignment.get(&rid)?;
        self.servers.get(sid)?.regions.get(&rid).map(|r| r.table().to_string())
    }

    /// Regions of a table in key order.
    pub fn table_regions(&self, table: &str) -> Vec<RegionId> {
        self.tables.get(table).map(|m| m.regions.values().copied().collect()).unwrap_or_default()
    }

    /// Region ids hosted by a server.
    pub fn server_regions(&self, sid: ServerId) -> Vec<RegionId> {
        self.servers.get(&sid).map(|s| s.regions.keys().copied().collect()).unwrap_or_default()
    }

    /// Request counters of a region.
    pub fn region_counters(&self, rid: RegionId) -> Option<RegionCounters> {
        let sid = self.assignment.get(&rid)?;
        self.servers.get(sid)?.regions.get(&rid).map(|r| r.counters())
    }

    /// Data size of a region in bytes.
    pub fn region_size(&self, rid: RegionId) -> Option<u64> {
        let sid = self.assignment.get(&rid)?;
        self.servers.get(sid)?.regions.get(&rid).map(|r| r.size_bytes())
    }

    /// Cache statistics of a server — *aggregate* counters across every
    /// operation the server has ever served. For per-operation block
    /// counts use the `*_with_stats` op paths, which attribute work to the
    /// op that did it; deltas of this global view mis-attribute when ops
    /// interleave.
    pub fn server_cache_stats(&self, sid: ServerId) -> Option<hstore::CacheStats> {
        self.servers.get(&sid).map(|s| s.cache.stats())
    }
}

fn rebuild_region(region: Region, dst: &mut FunctionalServer, ids: Arc<FileIdAllocator>) -> Region {
    // Export everything and rebuild with the destination's parameters.
    let id = region.id();
    let table = region.table().to_string();
    let range = region.range().clone();
    let families = region.family_names();
    let counters = region.counters();
    let mut rebuilt = Region::new(
        id,
        table,
        range,
        &families,
        dst.cache.clone(),
        ids,
        dst.config.block_size,
        dst.config.memstore_flush_bytes,
    );
    for fam in &families {
        // Re-import the newest versions from a stable snapshot of the
        // source region's store. (Older shadowed versions are dropped —
        // equivalent to a compaction on move, which keeps the rebuild
        // simple and correct.)
        let snapshot = region.family_snapshot(fam).expect("family exists");
        for (row, cells) in snapshot.scan_range(region.range(), usize::MAX) {
            for (q, v) in cells {
                rebuilt.put(fam, row.clone(), q, v).expect("row inside range");
            }
        }
    }
    rebuilt.flush_all();
    // Preserve the access-pattern counters across the move: classification
    // state must survive (the monitor diffs cumulative values).
    let _ = counters; // counters restart at zero; monitor handles resets
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn cluster_with(servers: usize) -> FunctionalCluster {
        let mut c = FunctionalCluster::new(7);
        for _ in 0..servers {
            c.add_server(StoreConfig::small_for_tests()).unwrap();
        }
        c
    }

    #[test]
    fn create_table_distributes_regions_evenly() {
        let mut c = cluster_with(4);
        let splits: Vec<RowKey> = (1..8).map(|i| format!("k{i}").as_str().into()).collect();
        let regions = c.create_table("t", &[Family::from("cf")], &splits).unwrap();
        assert_eq!(regions.len(), 8);
        for sid in c.server_ids() {
            assert_eq!(c.server_regions(sid).len(), 2, "uneven placement");
        }
    }

    #[test]
    fn put_get_routes_across_regions() {
        let mut c = cluster_with(3);
        c.create_table("t", &[Family::from("cf")], &["m".into()]).unwrap();
        c.put("t", &"cf".into(), "apple".into(), "q".into(), b("1")).unwrap();
        c.put("t", &"cf".into(), "zebra".into(), "q".into(), b("2")).unwrap();
        assert_eq!(c.get("t", &"cf".into(), &"apple".into(), &"q".into()).unwrap(), Some(b("1")));
        assert_eq!(c.get("t", &"cf".into(), &"zebra".into(), &"q".into()).unwrap(), Some(b("2")));
        assert_eq!(c.get("t", &"cf".into(), &"nope".into(), &"q".into()).unwrap(), None);
    }

    #[test]
    fn scan_crosses_region_boundaries() {
        let mut c = cluster_with(2);
        c.create_table("t", &[Family::from("cf")], &["row05".into(), "row10".into()]).unwrap();
        for i in 0..15 {
            c.put("t", &"cf".into(), format!("row{i:02}").into(), "q".into(), b("v")).unwrap();
        }
        let rows = c.scan("t", &"cf".into(), &"row03".into(), 9).unwrap();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].0.to_string(), "row03");
        assert_eq!(rows[8].0.to_string(), "row11");
    }

    #[test]
    fn unknown_table_errors() {
        let c = cluster_with(1);
        assert!(matches!(
            c.get("missing", &"cf".into(), &"r".into(), &"q".into()),
            Err(FunctionalError::UnknownTable(_))
        ));
    }

    #[test]
    fn background_maintenance_spans_current_and_future_regions() {
        let mut c = cluster_with(2);
        c.create_table("t", &[Family::from("cf")], &["m".into()]).unwrap();
        c.enable_background_maintenance(MaintenanceConfig {
            memstore_flush_bytes: 2_000,
            ..MaintenanceConfig::default()
        });
        for i in 0..400 {
            c.put("t", &"cf".into(), format!("row{i:04}").into(), "q".into(), b(&"x".repeat(40)))
                .unwrap();
        }
        c.drain_background_maintenance();
        let pressures: Vec<MaintenanceSnapshot> = c
            .table_regions("t")
            .into_iter()
            .filter_map(|rid| c.region_maintenance_pressure(rid))
            .collect();
        assert_eq!(pressures.len(), 2, "both regions run the pipeline");
        assert!(pressures.iter().any(|p| p.flushes_completed > 0), "{pressures:?}");
        assert!(pressures.iter().all(|p| p.frozen_memstores == 0), "drained");
        // A moved region keeps the pipeline on its new host.
        let rid = c.table_regions("t")[0];
        let from = c.region_server(rid).unwrap();
        let to = c.server_ids().into_iter().find(|s| *s != from).unwrap();
        c.move_region(rid, to).unwrap();
        assert!(c.region_maintenance_pressure(rid).is_some());
        // Every row survived flushes, compactions and the move.
        let rows = c.scan("t", &"cf".into(), &"row0000".into(), 1_000).unwrap();
        assert_eq!(rows.len(), 400);
        // Disabling reverts to inline maintenance everywhere.
        c.disable_background_maintenance();
        assert!(c.table_regions("t").iter().all(|r| c.region_maintenance_pressure(*r).is_none()));
    }

    #[test]
    fn move_region_preserves_data() {
        let mut c = cluster_with(2);
        c.create_table("t", &[Family::from("cf")], &[]).unwrap();
        for i in 0..20 {
            c.put("t", &"cf".into(), format!("r{i:02}").into(), "q".into(), b("v")).unwrap();
        }
        let rid = c.table_regions("t")[0];
        let from = c.region_server(rid).unwrap();
        let to = c.server_ids().into_iter().find(|s| *s != from).unwrap();
        c.move_region(rid, to).unwrap();
        assert_eq!(c.region_server(rid), Some(to));
        for i in 0..20 {
            assert_eq!(
                c.get("t", &"cf".into(), &format!("r{i:02}").as_str().into(), &"q".into()).unwrap(),
                Some(b("v")),
                "row r{i:02} lost in move"
            );
        }
    }

    #[test]
    fn maintenance_splits_oversized_regions() {
        let mut c = cluster_with(1);
        c.create_table("t", &[Family::from("cf")], &[]).unwrap();
        // small_for_tests splits at 4 MiB; write ~6 MiB.
        let payload = "x".repeat(1_000);
        for i in 0..6_000 {
            c.put("t", &"cf".into(), format!("row{i:05}").into(), "q".into(), b(&payload)).unwrap();
        }
        // Flush everything so the split heuristic sees file data.
        let before = c.table_regions("t").len();
        let splits = c.maintenance();
        assert!(splits >= 1, "expected at least one split");
        assert!(c.table_regions("t").len() > before);
        // Data still fully readable after split.
        for i in (0..6_000).step_by(997) {
            assert!(c
                .get("t", &"cf".into(), &format!("row{i:05}").as_str().into(), &"q".into())
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn op_paths_attribute_their_own_cache_traffic() {
        // Two regions on one server share a block cache. Alternating scans
        // over both must each report only their own block reads — exactly
        // what a before/after delta of the global CacheStats gets wrong.
        let mut c = cluster_with(1);
        c.create_table("t", &[Family::from("cf")], &["m".into()]).unwrap();
        let payload = "x".repeat(500);
        for i in 0..200 {
            c.put("t", &"cf".into(), format!("a{i:03}").into(), "q".into(), b(&payload)).unwrap();
            c.put("t", &"cf".into(), format!("n{i:03}").into(), "q".into(), b(&payload)).unwrap();
        }
        // Flush both regions so scans read real file blocks.
        for rid in c.table_regions("t") {
            c.major_compact_region(rid).unwrap();
        }
        let sid = c.server_ids()[0];
        let before = c.server_cache_stats(sid).unwrap();

        let mut low = OpStats::default();
        let mut high = OpStats::default();
        for round in 0..4 {
            let start_a: RowKey = format!("a{:03}", round * 50).as_str().into();
            let start_n: RowKey = format!("n{:03}", round * 50).as_str().into();
            let (rows, s) = c.scan_with_stats("t", &"cf".into(), &start_a, 50).unwrap();
            assert_eq!(rows.len(), 50);
            low.absorb(s);
            let (rows, s) = c.scan_with_stats("t", &"cf".into(), &start_n, 50).unwrap();
            assert_eq!(rows.len(), 50);
            high.absorb(s);
        }
        assert!(low.blocks_touched() > 0 && high.blocks_touched() > 0);
        // Per-op attribution must add up to the server's global counters.
        let after = c.server_cache_stats(sid).unwrap();
        assert_eq!(
            low.blocks_touched() + high.blocks_touched(),
            after.accesses() - before.accesses(),
            "per-op stats must partition the global cache traffic"
        );
        // A point get after compaction reports its own (tiny) footprint.
        let (_, g) = c.get_with_stats("t", &"cf".into(), &"a000".into(), &"q".into()).unwrap();
        assert!(!g.memstore, "flushed data must come from files");
        assert!(g.blocks_touched() >= 1);
        assert!(g.blocks_touched() < low.blocks_touched());
    }

    #[test]
    fn counters_survive_routing() {
        let mut c = cluster_with(2);
        c.create_table("t", &[Family::from("cf")], &["m".into()]).unwrap();
        c.put("t", &"cf".into(), "a".into(), "q".into(), b("1")).unwrap();
        c.get("t", &"cf".into(), &"a".into(), &"q".into()).unwrap();
        c.get("t", &"cf".into(), &"z".into(), &"q".into()).unwrap();
        let regions = c.table_regions("t");
        let c0 = c.region_counters(regions[0]).unwrap();
        let c1 = c.region_counters(regions[1]).unwrap();
        assert_eq!(c0.writes + c1.writes, 1);
        assert_eq!(c0.reads + c1.reads, 2);
    }
}
