//! Per-server queueing latency: service-time costing of real storage work
//! and a deterministic response-time distribution per server.
//!
//! Two halves, both closed-form so results are bit-identical regardless of
//! `MET_THREADS`:
//!
//! * [`op_service_ms`] prices one executed [`hstore`] operation from the
//!   work it actually did ([`OpStats`]): a memstore insert costs CPU only,
//!   a cache hit costs a block decode, a disk block read costs a seek plus
//!   the transfer, and background compaction IO inflates the disk part —
//!   the service-time inputs the queueing model consumes.
//! * [`LatencyMixture`] models a server's response-time distribution as a
//!   mixture of exponential components, one per (partition, op class,
//!   hit/miss) stream: component weight is the stream's request rate,
//!   component mean is its queue-inflated response time from the
//!   equilibrium solver. Waiting time enters through those means — they
//!   already carry the `1/(1-rho)` inflation — so the mixture's tail grows
//!   super-linearly as utilization approaches saturation, producing the
//!   hockey-stick p99 the `exp-latency` bench sweeps. Quantiles come from
//!   bisection on the mixture CDF (no sampling, no RNG).

use crate::model::{queue_inflation, CostParams};
use hstore::{OpStats, StoreConfig};

/// Digest of a latency distribution, all in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Mean response time.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile — the SLO signal `core::decision` gates on.
    pub p99_ms: f64,
}

/// A mixture of exponential response-time components.
///
/// Each component is a request stream: `weight` requests per second whose
/// response times are exponentially distributed with the given mean. The
/// exponential is the M/M/1 sojourn-time shape, so a component whose mean
/// is already queue-inflated contributes the correct heavy tail.
#[derive(Debug, Clone, Default)]
pub struct LatencyMixture {
    components: Vec<(f64, f64)>, // (weight rps, mean ms)
}

impl LatencyMixture {
    /// An empty mixture (no traffic).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component; zero or negative weights/means are ignored.
    pub fn push(&mut self, weight_rps: f64, mean_ms: f64) {
        if weight_rps > 0.0 && mean_ms > 0.0 && weight_rps.is_finite() && mean_ms.is_finite() {
            self.components.push((weight_rps, mean_ms));
        }
    }

    /// Total request rate across components.
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|(w, _)| w).sum()
    }

    /// Weighted mean response time.
    pub fn mean_ms(&self) -> f64 {
        let w = self.total_weight();
        if w <= 0.0 {
            return 0.0;
        }
        self.components.iter().map(|(wi, mi)| wi * mi).sum::<f64>() / w
    }

    /// `P(T ≤ t)` for the mixture.
    fn cdf(&self, t_ms: f64) -> f64 {
        let w = self.total_weight();
        if w <= 0.0 {
            return 1.0;
        }
        self.components.iter().map(|(wi, mi)| wi * (1.0 - (-t_ms / mi).exp())).sum::<f64>() / w
    }

    /// The `q`-quantile (e.g. `0.99`) by bisection on the CDF.
    ///
    /// Deterministic: pure float math over the components in insertion
    /// order, a doubling search for an upper bracket, then a fixed number
    /// of bisection steps.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.components.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 0.999_999);
        // Bracket: the slowest component bounds how far the tail can reach;
        // double until the CDF crosses q (terminates: cdf → 1).
        let max_mean = self.components.iter().map(|(_, m)| *m).fold(0.0, f64::max);
        let mut hi = (max_mean * -(1.0 - q).ln()).max(1e-9);
        for _ in 0..64 {
            if self.cdf(hi) >= q {
                break;
            }
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Mean plus the standard quantiles.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            mean_ms: self.mean_ms(),
            p50_ms: self.quantile_ms(0.50),
            p95_ms: self.quantile_ms(0.95),
            p99_ms: self.quantile_ms(0.99),
        }
    }
}

/// Service time of one executed storage operation, priced from the work
/// [`OpStats`] says it did.
///
/// * memstore insert / memstore-served read: CPU only;
/// * each cached block touched: one block decode ([`CostParams::cache_hit_block_ms`]);
/// * each disk block read: one seek plus the block transfer, inflated by
///   background compaction IO sharing the disk (`background_mb_s`).
pub fn op_service_ms(
    params: &CostParams,
    config: &StoreConfig,
    stats: &OpStats,
    background_mb_s: f64,
) -> f64 {
    let cpu_ms = if stats.memstore && stats.blocks_touched() == 0 {
        // Pure memstore op (a put, or a read answered by the write buffer).
        params.cpu_write_ms
    } else {
        params.cpu_read_ms
    };
    let hit_ms = stats.cache_hits as f64 * params.cache_hit_block_ms;
    let block_mb = config.block_size as f64 / 1e6;
    let block_io_ms = params.disk_seek_ms + block_mb / params.disk_bw_mb_s * 1_000.0;
    // Compaction interference: the background stream occupies the disk,
    // queueing this op's reads behind it.
    let rho_bg = background_mb_s / params.disk_bw_mb_s / params.disk_parallelism;
    let disk_ms = stats.blocks_read as f64 * block_io_ms * queue_inflation(params, rho_bg);
    cpu_ms + hit_ms + disk_ms
}

/// Coarse Table-1 profile label for a storage configuration, used to key
/// per-profile latency histograms. Mirrors the paper's profiles: a big
/// block cache marks a read node, a big memstore a write node, large
/// blocks a scan node.
pub fn profile_label(config: &StoreConfig) -> &'static str {
    if config.memstore_fraction >= 0.40 {
        "write"
    } else if config.block_cache_fraction >= 0.40 {
        if config.block_size >= 64 * 1024 {
            "scan"
        } else {
            "read"
        }
    } else {
        "balanced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(mean: f64) -> LatencyMixture {
        let mut m = LatencyMixture::new();
        m.push(100.0, mean);
        m
    }

    #[test]
    fn exponential_quantiles_match_closed_form() {
        let m = single(10.0);
        // Exponential q-quantile = mean × -ln(1-q).
        for (q, expect) in [(0.5, 10.0 * 2f64.ln()), (0.99, 10.0 * 100f64.ln())] {
            let got = m.quantile_ms(q);
            assert!((got - expect).abs() / expect < 1e-6, "q{q}: {got} vs {expect}");
        }
    }

    #[test]
    fn empty_mixture_is_all_zero() {
        let s = LatencyMixture::new().summary();
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn slow_minority_dominates_the_tail_not_the_median() {
        let mut m = LatencyMixture::new();
        m.push(95.0, 1.0); // cache hits
        m.push(5.0, 50.0); // disk misses
        let s = m.summary();
        assert!(s.p50_ms < 2.0, "median should look like a hit: {}", s.p50_ms);
        // The 5 % slow stream owns the tail: P(T>t) ≈ 0.05·exp(-t/50), so
        // p99 = 50·ln 5 ≈ 80 ms — far beyond the 1 ms hit component.
        assert!(s.p99_ms > 50.0, "p99 should look like a queued miss: {}", s.p99_ms);
        assert!(s.p95_ms > s.p50_ms && s.p99_ms > s.p95_ms);
    }

    #[test]
    fn quantiles_are_deterministic() {
        let mk = || {
            let mut m = LatencyMixture::new();
            for i in 1..40 {
                m.push(i as f64, 0.37 * i as f64);
            }
            m.summary()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn service_cost_orders_memstore_hit_miss() {
        let p = CostParams::default();
        let cfg = StoreConfig::default_homogeneous();
        let memstore = OpStats { cache_hits: 0, blocks_read: 0, memstore: true };
        let hit = OpStats { cache_hits: 1, blocks_read: 0, memstore: false };
        let miss = OpStats { cache_hits: 0, blocks_read: 1, memstore: false };
        let c_mem = op_service_ms(&p, &cfg, &memstore, 0.0);
        let c_hit = op_service_ms(&p, &cfg, &hit, 0.0);
        let c_miss = op_service_ms(&p, &cfg, &miss, 0.0);
        assert!(c_hit < c_miss, "hit {c_hit} must undercut miss {c_miss}");
        assert!(c_mem < c_miss, "memstore {c_mem} must undercut miss {c_miss}");
        // A scan that spans more blocks costs proportionally more disk.
        let scan3 = OpStats { cache_hits: 0, blocks_read: 3, memstore: false };
        assert!(op_service_ms(&p, &cfg, &scan3, 0.0) > 2.5 * (c_miss - p.cpu_read_ms));
    }

    #[test]
    fn compaction_interference_inflates_disk_reads() {
        let p = CostParams::default();
        let cfg = StoreConfig::default_homogeneous();
        let miss = OpStats { cache_hits: 0, blocks_read: 2, memstore: false };
        let quiet = op_service_ms(&p, &cfg, &miss, 0.0);
        let busy = op_service_ms(&p, &cfg, &miss, p.compact_mb_s);
        assert!(busy > quiet, "compaction must slow disk reads: {busy} vs {quiet}");
        // CPU-only work is untouched by disk interference.
        let mem = OpStats { cache_hits: 0, blocks_read: 0, memstore: true };
        assert_eq!(op_service_ms(&p, &cfg, &mem, 0.0), op_service_ms(&p, &cfg, &mem, 50.0));
    }

    #[test]
    fn profile_labels_follow_table1_shapes() {
        let mut cfg = StoreConfig::default_homogeneous();
        cfg.block_cache_fraction = 0.55;
        cfg.memstore_fraction = 0.10;
        cfg.block_size = 32 * 1024;
        assert_eq!(profile_label(&cfg), "read");
        cfg.block_size = 128 * 1024;
        assert_eq!(profile_label(&cfg), "scan");
        cfg.block_cache_fraction = 0.10;
        cfg.memstore_fraction = 0.55;
        assert_eq!(profile_label(&cfg), "write");
        assert_eq!(profile_label(&StoreConfig::default_homogeneous()), "balanced");
    }
}
