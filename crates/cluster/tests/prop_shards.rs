//! Property tests for the sharded tick engine's ownership invariant and
//! trace determinism under randomized topology schedules.
//!
//! Two properties, checked after *every* topology change in a random
//! schedule of grow / shrink / crash-replace / run-ticks operations:
//!
//! 1. **Exactly-once ownership** — the shard layout partitions the full
//!    membership (every known server, any lifecycle state) into contiguous
//!    ID-ordered chunks: each server appears in exactly one shard, no
//!    server is missing, and concatenating the shards in order yields the
//!    fleet sorted by ID.
//! 2. **Thread invariance** — replaying the identical schedule at 1 and 4
//!    threads produces byte-identical telemetry traces, throughput series,
//!    final snapshots, and the same shard membership after each step
//!    (4-thread runs dispatch across real workers via the physical-core
//!    override, so the comparison genuinely crosses thread boundaries).

use cluster::{
    ClientGroup, ClusterSnapshot, CostParams, ElasticCluster, OpMix, PartitionId, PartitionSpec,
    ServerId, SimCluster,
};
use hstore::StoreConfig;
use proptest::prelude::*;

/// One step of a topology schedule. Indices are taken modulo the current
/// online-server count so any u8 is valid regardless of fleet history.
#[derive(Debug, Clone)]
enum TopoOp {
    /// Provision a fresh server (immediate: no boot delay).
    Grow,
    /// Decommission the i-th online server (partitions hand off first;
    /// errors — e.g. nothing online — are tolerated and still exercise
    /// the layout path).
    Shrink(u8),
    /// Crash the i-th online server, then provision a replacement — the
    /// §6.2 crash-replace flow; the healer re-homes the dead server's
    /// partitions over the following ticks.
    CrashReplace(u8),
    /// Advance the simulation 1–3 ticks.
    Run(u8),
}

fn op_strategy() -> impl Strategy<Value = TopoOp> {
    prop_oneof![
        Just(TopoOp::Grow),
        any::<u8>().prop_map(TopoOp::Shrink),
        any::<u8>().prop_map(TopoOp::CrashReplace),
        // Duplicated arm: ticks between topology changes let the solver,
        // healer, and compaction drain actually run on the new layout.
        (1u8..4).prop_map(TopoOp::Run),
        (1u8..4).prop_map(TopoOp::Run),
    ]
}

fn build(threads: usize, seed: u64) -> (SimCluster, telemetry::Telemetry) {
    let telemetry = telemetry::Telemetry::with_ring(telemetry::Verbosity::Debug, 1 << 15);
    let mut sim = SimCluster::new(CostParams::default(), seed);
    sim.set_threads(threads);
    sim.set_telemetry(telemetry.clone());
    for _ in 0..3 {
        sim.add_server_immediate(StoreConfig::default_homogeneous());
    }
    let parts: Vec<PartitionId> = (0..6)
        .map(|_| {
            sim.create_partition(PartitionSpec {
                table: "prop".into(),
                size_bytes: 1.0e9,
                record_bytes: 1_000.0,
                hot_set_fraction: 0.4,
                hot_ops_fraction: 0.5,
            })
        })
        .collect();
    sim.random_balance_unassigned();
    let w = 1.0 / parts.len() as f64;
    sim.add_group(ClientGroup::with_common_weights(
        "prop",
        45.0,
        0.5,
        None,
        OpMix::new(0.45, 0.45, 0.10),
        parts.iter().map(|p| (*p, w)).collect(),
        1.0,
        0.0,
    ));
    (sim, telemetry)
}

/// Asserts the exactly-once ownership invariant and returns the layout for
/// cross-thread comparison.
fn check_ownership(sim: &mut SimCluster) -> Vec<Vec<ServerId>> {
    let members = sim.shard_members();
    let flat: Vec<ServerId> = members.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).all(|w| w[0] < w[1]),
        "shards must concatenate to a strictly ID-ascending fleet: {members:?}"
    );
    let mut known = sim.all_server_ids();
    known.sort();
    assert_eq!(
        flat, known,
        "every known server (any lifecycle state) must be owned by exactly one shard"
    );
    members
}

fn trace_of(telemetry: &telemetry::Telemetry) -> String {
    telemetry.events().iter().map(|e| e.to_json_line()).collect::<Vec<_>>().join("\n")
}

/// Runs the schedule at `threads`, checking ownership after every step;
/// returns everything the thread-invariance comparison needs.
fn run_schedule(
    schedule: &[TopoOp],
    threads: usize,
    seed: u64,
) -> (String, String, ClusterSnapshot, Vec<Vec<Vec<ServerId>>>) {
    let (mut sim, telemetry) = build(threads, seed);
    let mut layouts = vec![check_ownership(&mut sim)];
    for op in schedule {
        match op {
            TopoOp::Grow => {
                sim.add_server_immediate(StoreConfig::default_homogeneous());
            }
            TopoOp::Shrink(i) => {
                let online = sim.online_server_ids();
                if !online.is_empty() {
                    // Keep at least two servers so the client group always
                    // has somewhere to land; a failed decommission (e.g.
                    // re-replication pressure) is fine — the layout must
                    // hold either way.
                    if online.len() > 2 {
                        let victim = online[*i as usize % online.len()];
                        let _ = sim.decommission_server(victim);
                    }
                }
            }
            TopoOp::CrashReplace(i) => {
                let online = sim.online_server_ids();
                if online.len() > 1 {
                    let victim = online[*i as usize % online.len()];
                    sim.crash_server(victim);
                    sim.add_server_immediate(StoreConfig::default_homogeneous());
                }
            }
            TopoOp::Run(n) => sim.run_ticks(*n as usize),
        }
        layouts.push(check_ownership(&mut sim));
    }
    // A final settle so crash re-homing and decommission drains complete
    // inside the compared window.
    sim.run_ticks(3);
    layouts.push(check_ownership(&mut sim));
    (trace_of(&telemetry), format!("{:?}", sim.total_series().points()), sim.snapshot(), layouts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn topology_schedules_are_thread_invariant_with_exact_ownership(
        schedule in proptest::collection::vec(op_strategy(), 1..10),
        seed in 0u64..1_000,
    ) {
        // Force real cross-thread dispatch even on a single-core host.
        simcore::par::set_physical_override(Some(4));
        let (trace_seq, series_seq, snap_seq, layouts_seq) = run_schedule(&schedule, 1, seed);
        let (trace_par, series_par, snap_par, layouts_par) = run_schedule(&schedule, 4, seed);
        prop_assert_eq!(
            trace_seq, trace_par,
            "telemetry trace diverged between 1 and 4 threads for {:?}", schedule
        );
        prop_assert_eq!(
            series_seq, series_par,
            "throughput series diverged between 1 and 4 threads for {:?}", schedule
        );
        prop_assert_eq!(
            format!("{snap_seq:?}"), format!("{snap_par:?}"),
            "final snapshot diverged between 1 and 4 threads for {:?}", schedule
        );
        // Shard *membership* (who owns which server) is a function of the
        // fleet and the configured thread count, so the 4-thread layouts
        // must simply be valid (checked in run_schedule); but both runs
        // must agree on the fleet itself after every step.
        prop_assert_eq!(layouts_seq.len(), layouts_par.len());
        for (a, b) in layouts_seq.iter().zip(&layouts_par) {
            let fleet_a: Vec<ServerId> = a.iter().flatten().copied().collect();
            let fleet_b: Vec<ServerId> = b.iter().flatten().copied().collect();
            prop_assert_eq!(fleet_a, fleet_b, "fleet membership diverged for {:?}", schedule);
        }
    }
}

#[test]
fn crash_replace_rebalances_deterministically() {
    // A directed (non-random) regression case: crash the middle server of
    // five, replace it, and check the new layout is the canonical
    // contiguous partition of the surviving IDs plus the replacement.
    simcore::par::set_physical_override(Some(4));
    let (mut sim, _t) = build(4, 7);
    for _ in 0..2 {
        sim.add_server_immediate(StoreConfig::default_homogeneous());
    }
    sim.run_ticks(2);
    let before = check_ownership(&mut sim);
    let fleet: Vec<ServerId> = before.iter().flatten().copied().collect();
    let victim = fleet[fleet.len() / 2];
    sim.crash_server(victim);
    let replacement = sim.add_server_immediate(StoreConfig::default_homogeneous());
    sim.run_ticks(3);
    let after = check_ownership(&mut sim);
    let after_flat: Vec<ServerId> = after.iter().flatten().copied().collect();
    assert!(after_flat.contains(&victim), "crashed servers stay owned until removed");
    assert!(after_flat.contains(&replacement), "the replacement must be owned immediately");
    // Chunks stay balanced: sizes differ by at most one, larger chunks
    // first (the canonical `chunk_ranges` shape).
    let sizes: Vec<usize> = after.iter().map(|s| s.len()).collect();
    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
    assert!(max - min <= 1, "shard sizes must stay balanced: {sizes:?}");
    assert!(
        sizes.windows(2).all(|w| w[0] >= w[1]),
        "larger chunks come first in the canonical layout: {sizes:?}"
    );
}
