//! Span-profiler correctness across `simcore::par` worker threads: the
//! exact shape the instrumented tick pipeline uses (a coordinator phase
//! span, a captured [`SpanContext`], per-shard child spans inside the
//! parallel closure).

use std::sync::Mutex;
use telemetry::span;

/// Span tests share the process-global profiler; serialize them.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn par_workers_parent_on_the_coordinator_phase_span() {
    let _l = lock();
    span::set_enabled(true);
    span::clear();

    let shards: Vec<u64> = (0..16).collect();
    let phase_id;
    {
        let phase = span::span("solver.fanout");
        phase_id = phase.id().unwrap();
        let ctx = span::current_context();
        let results = simcore::par::map(4, &shards, |&shard| {
            let _eval = ctx.child_shard("solver.evaluate", shard);
            shard * 2
        });
        assert_eq!(results, shards.iter().map(|s| s * 2).collect::<Vec<_>>());
    }
    span::set_enabled(false);

    let records = span::drain();
    let evals: Vec<_> = records.iter().filter(|r| r.name == "solver.evaluate").collect();
    assert_eq!(evals.len(), 16);
    for eval in &evals {
        assert_eq!(
            eval.parent,
            Some(phase_id),
            "worker-side span must parent on the coordinator's phase span"
        );
    }
    // Every shard label present exactly once.
    let mut labels: Vec<&str> = evals.iter().map(|r| r.labels[0].1.as_str()).collect();
    labels.sort_by_key(|s| s.parse::<u64>().unwrap());
    let expect: Vec<String> = (0..16u64).map(|s| s.to_string()).collect();
    assert_eq!(labels, expect.iter().map(String::as_str).collect::<Vec<_>>());
    let phase = records.iter().find(|r| r.name == "solver.fanout").unwrap();
    assert_eq!(phase.parent, None);
}

#[test]
fn spans_on_distinct_os_threads_get_distinct_thread_ids() {
    let _l = lock();
    span::set_enabled(true);
    span::clear();
    let phase_id;
    {
        let phase = span::span("solver.fanout");
        phase_id = phase.id().unwrap();
        let ctx = span::current_context();
        // Explicit threads (not a pool) make the cross-thread case
        // deterministic: rayon may service a small fan-out entirely on the
        // coordinator, but these two closures *must* run elsewhere.
        std::thread::scope(|s| {
            for shard in [100u64, 200] {
                s.spawn(move || {
                    let _g = ctx.child_shard("solver.evaluate", shard);
                });
            }
        });
        let _local = ctx.child_shard("solver.evaluate", 0);
    }
    span::set_enabled(false);
    let records = span::drain();
    let evals: Vec<_> = records.iter().filter(|r| r.name == "solver.evaluate").collect();
    assert_eq!(evals.len(), 3);
    let coordinator = records.iter().find(|r| r.name == "solver.fanout").unwrap().thread;
    let mut threads: Vec<u64> = evals.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert!(threads.len() >= 3, "each OS thread gets its own id, got {threads:?}");
    for eval in &evals {
        assert_eq!(eval.parent, Some(phase_id));
        if eval.labels[0].1 != "0" {
            assert_ne!(eval.thread, coordinator, "spawned spans record their own thread id");
        }
    }
}

#[test]
fn sequential_fanout_still_nests_via_context() {
    let _l = lock();
    span::set_enabled(true);
    span::clear();
    let shards: Vec<u64> = (0..4).collect();
    {
        let _phase = span::span("solver.fanout");
        let ctx = span::current_context();
        // threads = 1: par::map degrades to a plain loop on this thread.
        let _ = simcore::par::map(1, &shards, |&shard| {
            let _eval = ctx.child_shard("solver.evaluate", shard);
            shard
        });
    }
    span::set_enabled(false);
    let records = span::drain();
    let phase_id = records.iter().find(|r| r.name == "solver.fanout").unwrap().id;
    let evals: Vec<_> = records.iter().filter(|r| r.name == "solver.evaluate").collect();
    assert_eq!(evals.len(), 4);
    for e in &evals {
        assert_eq!(e.parent, Some(phase_id));
        assert_eq!(e.thread, records.iter().find(|r| r.name == "solver.fanout").unwrap().thread);
    }
}

#[test]
fn telemetry_handle_span_sugar_records_through_the_global_profiler() {
    let _l = lock();
    span::set_enabled(true);
    span::clear();
    // Even a *disabled* telemetry handle profiles: the span gate is the
    // process-global MET_PROFILE state, not the handle.
    let t = telemetry::Telemetry::disabled();
    {
        let _g = t.span("met.decide", &[("stage", "classify")]);
    }
    span::set_enabled(false);
    let records = span::drain();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].name, "met.decide");
    assert_eq!(records[0].labels, vec![("stage", "classify".to_string())]);
}

#[test]
fn disabled_profiler_is_a_no_op_even_across_threads() {
    let _l = lock();
    span::set_enabled(false);
    span::clear();
    let ctx = span::current_context();
    let items: Vec<u64> = (0..32).collect();
    let _ = simcore::par::map(4, &items, |&i| {
        let _g = ctx.child_shard("noop", i);
        i
    });
    assert!(span::drain().is_empty());
}

#[test]
fn chrome_trace_from_a_parallel_run_is_loadable() {
    let _l = lock();
    span::set_enabled(true);
    span::clear();
    let shards: Vec<u64> = (0..8).collect();
    {
        let _tick = span::span("sim.tick");
        let ctx = span::current_context();
        let _ = simcore::par::map(2, &shards, |&s| {
            let _g = ctx.child_shard("solver.evaluate", s);
            s
        });
    }
    span::set_enabled(false);
    let records = span::drain();
    let json = span::chrome_trace(&records);
    let v: serde_json::Value =
        serde_json::from_str(&json).expect("chrome trace must be valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), records.len());
    let mut ids = std::collections::BTreeSet::new();
    for e in events {
        assert_eq!(e["ph"].as_str(), Some("X"), "complete events");
        assert!(e["ts"].as_u64().is_some());
        assert!(e["dur"].as_u64().is_some());
        assert!(e["pid"].as_u64().is_some());
        assert!(e["tid"].as_u64().is_some());
        assert!(e["name"].as_str().is_some());
        ids.insert(e["args"]["id"].as_u64().unwrap());
    }
    // Parent references resolve within the trace.
    for e in events {
        if let Some(p) = e["args"].get("parent").and_then(|p| p.as_u64()) {
            assert!(ids.contains(&p), "dangling parent id {p}");
        }
    }
}
