//! Golden-file test for the Prometheus text exposition.
//!
//! The exposition is part of the crate's external surface (scrape targets
//! and diff-based tooling both consume it), so its exact bytes are pinned:
//! any format change must update `tests/golden/metrics.prom` deliberately.

use telemetry::{Telemetry, Verbosity};

const GOLDEN: &str = include_str!("golden/metrics.prom");

fn sample_telemetry() -> Telemetry {
    let t = Telemetry::new(Verbosity::Off);
    t.counter_add("met_actions_total", &[("action", "move_in")], 3);
    t.counter_add("met_actions_total", &[("action", "split")], 1);
    t.counter_add("ticks_total", &[], 120);
    t.counter_add("met_store_stall_ms_total", &[("server", "1")], 250);
    t.gauge_set("cluster_warmth", &[("server", "1")], 0.8125);
    t.gauge_set("cluster_warmth", &[("server", "2")], 0.5);
    t.gauge_set("met_store_frozen_memstores", &[("server", "1")], 2.0);
    t.observe("reconfig_ms", &[("kind", "add")], 40.0);
    t.observe("reconfig_ms", &[("kind", "add")], 75.0);
    t.observe("reconfig_ms", &[("kind", "add")], 220.0);
    t
}

#[test]
fn exposition_matches_golden_file() {
    assert_eq!(sample_telemetry().render_prometheus(), GOLDEN);
}

#[test]
fn exposition_is_deterministic_across_insertion_orders() {
    // Same metrics recorded in a different order must render identically:
    // the registry is key-sorted, not insertion-ordered.
    let t = Telemetry::new(Verbosity::Off);
    t.observe("reconfig_ms", &[("kind", "add")], 220.0);
    t.gauge_set("met_store_frozen_memstores", &[("server", "1")], 2.0);
    t.gauge_set("cluster_warmth", &[("server", "2")], 0.5);
    t.counter_add("ticks_total", &[], 120);
    t.observe("reconfig_ms", &[("kind", "add")], 40.0);
    t.counter_add("met_actions_total", &[("action", "split")], 1);
    t.gauge_set("cluster_warmth", &[("server", "1")], 0.8125);
    t.counter_add("met_store_stall_ms_total", &[("server", "1")], 250);
    t.counter_add("met_actions_total", &[("action", "move_in")], 3);
    t.observe("reconfig_ms", &[("kind", "add")], 75.0);
    assert_eq!(t.render_prometheus(), GOLDEN);
}

#[test]
fn disabled_handle_renders_empty() {
    assert_eq!(Telemetry::disabled().render_prometheus(), "");
}
