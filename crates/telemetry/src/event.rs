//! The typed event taxonomy for the decision audit trail.
//!
//! Each variant captures not just *what* happened but *why*: the observed
//! values and the thresholds they were compared against. The JSON encoding
//! is hand-rolled (one flat object per event, discriminated by `"type"`)
//! and round-trips exactly through [`Event::to_json_line`] /
//! [`Event::from_json`].

use serde_json::{json, Value};

/// Importance of an event; gates what the sinks keep at each verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Decision/action events — the audit trail proper.
    Info,
    /// High-volume evidence events (per-sample, per-flush).
    Debug,
}

/// One observation or decision in the control loop.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// The monitor ingested one server's smoothed load sample (§4.1).
    MonitorSample {
        /// Server the sample describes.
        server: u64,
        /// Smoothed CPU utilisation in `[0, 1]`.
        cpu: f64,
        /// Smoothed io-wait fraction in `[0, 1]`.
        io_wait: f64,
        /// Smoothed memory utilisation in `[0, 1]`.
        mem: f64,
        /// HDFS locality index in `[0, 1]`.
        locality: f64,
    },
    /// Stage A of the decision maker: cluster health vs thresholds (§4.2).
    HealthAssessed {
        /// Servers currently online.
        online: u64,
        /// Servers above the CPU/io-wait high thresholds.
        overloaded: Vec<u64>,
        /// Servers below the low thresholds.
        underloaded: Vec<u64>,
        /// CPU threshold that marks a server overloaded.
        cpu_high: f64,
        /// io-wait threshold that marks a server overloaded.
        io_high: f64,
        /// CPU threshold that marks a server underloaded.
        cpu_low: f64,
        /// io-wait threshold that marks a server underloaded.
        io_low: f64,
    },
    /// Algorithm 1's sizing verdict: how many nodes to add or remove.
    NodeDelta {
        /// Nodes currently in the cluster.
        current: u64,
        /// Signed change decided (quadratic growth, linear shrink).
        delta: i64,
        /// Overloaded-node count that drove the decision.
        overloaded: u64,
        /// Underloaded-node count that drove the decision.
        underloaded: u64,
    },
    /// One partition's workload classification verdict (§4.2, stage B).
    PartitionClassified {
        /// Partition being classified.
        partition: u64,
        /// Verdict: `read` / `write` / `read-write` / `scan`.
        profile: String,
        /// Fraction of operations that were reads.
        read_frac: f64,
        /// Fraction of operations that were writes.
        write_frac: f64,
        /// Fraction of operations that were scans.
        scan_frac: f64,
        /// Dominance threshold the fractions were compared against.
        threshold: f64,
    },
    /// Algorithm 3's output: the distribution plan about to be applied.
    PlanComputed {
        /// Partition moves in the plan.
        moves: u64,
        /// Servers whose configuration profile changes (restart required).
        restarts: u64,
        /// Servers scheduled for decommission.
        decommissions: u64,
        /// Node groups as (profile, node-count) pairs.
        groups: Vec<(String, u64)>,
    },
    /// A baseline controller's rule fired (threshold crossing).
    RuleFired {
        /// Controller name (`tiramola`, `autoscaler`, ...).
        controller: String,
        /// Rule identifier.
        rule: String,
        /// Observed metric value.
        observed: f64,
        /// Threshold the observation crossed.
        threshold: f64,
        /// Action the rule requested.
        action: String,
    },
    /// The actuator started one step of the current plan (§5).
    ActionStarted {
        /// Step kind: `provision`, `drain`, `restart`, `move_in`,
        /// `compact`, `decommission`, `add_node`, `remove_node`, ...
        action: String,
        /// Server the step targets.
        server: u64,
        /// Partition involved, when the step is partition-scoped.
        partition: Option<u64>,
        /// Human-readable cause (profile chosen, move source, ...).
        detail: String,
    },
    /// The actuator finished one step of the current plan.
    ActionCompleted {
        /// Step kind (same vocabulary as [`TelemetryEvent::ActionStarted`]).
        action: String,
        /// Server the step targeted.
        server: u64,
        /// Partition involved, when the step was partition-scoped.
        partition: Option<u64>,
        /// Simulated duration of the step in milliseconds.
        duration_ms: u64,
    },
    /// A reconfiguration (full actuator plan) began executing.
    ReconfigStarted {
        /// Why the decision maker reconfigured.
        reason: String,
    },
    /// The running reconfiguration finished; the monitor resets.
    ReconfigCompleted {
        /// Simulated duration from plan start to completion, ms.
        duration_ms: u64,
    },
    /// The IaaS delivered a new node.
    NodeProvisioned {
        /// Server id assigned to the new node.
        server: u64,
        /// Configuration profile it was started with.
        profile: String,
    },
    /// A node was removed from the cluster.
    NodeDecommissioned {
        /// Server id removed.
        server: u64,
    },
    /// Block-cache counters for one server (from the storage layer).
    CacheReport {
        /// Server the cache belongs to.
        server: u64,
        /// Cumulative cache hits.
        hits: u64,
        /// Cumulative cache misses.
        misses: u64,
        /// Cumulative evictions.
        evictions: u64,
    },
    /// A memstore flushed to an immutable file.
    MemstoreFlush {
        /// Server performing the flush.
        server: u64,
        /// Region flushed.
        region: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// A region split into two daughters.
    RegionSplit {
        /// Server hosting the region.
        server: u64,
        /// Region that split.
        region: u64,
        /// Id of the new (upper) daughter.
        new_region: u64,
    },
    /// A compaction finished (storage or DFS level).
    CompactionDone {
        /// Server the compaction ran on.
        server: u64,
        /// Bytes rewritten.
        bytes: u64,
    },
    /// Locality index sample for one data node (from the DFS layer).
    LocalitySample {
        /// Data node sampled.
        server: u64,
        /// Byte-weighted locality index in `[0, 1]`.
        value: f64,
    },
    /// A scripted fault fired at its injection point (chaos runs only).
    FaultInjected {
        /// Fault kind: `provision_fail`, `slow_boot`, `server_crash`,
        /// `move_fail`, `restart_fail`, `compact_fail`, `datanode_loss`,
        /// `metrics_drop`.
        kind: String,
        /// Server/datanode the fault hit, when entity-scoped.
        target: Option<u64>,
        /// Human-readable description of the effect.
        detail: String,
    },
    /// A failed control-plane step was scheduled for retry with backoff.
    RetryScheduled {
        /// Step kind (same vocabulary as [`TelemetryEvent::ActionStarted`]).
        action: String,
        /// Server the step targets, when known.
        server: Option<u64>,
        /// Partition involved, when the step is partition-scoped.
        partition: Option<u64>,
        /// Failure count so far (1 = first retry pending).
        attempt: u64,
        /// Backoff wait before the next attempt, milliseconds.
        backoff_ms: u64,
        /// The error that triggered the retry.
        error: String,
    },
    /// A control-plane step exhausted its retry budget (or its target
    /// vanished) and was abandoned with a typed error.
    StepFailed {
        /// Step kind (same vocabulary as [`TelemetryEvent::ActionStarted`]).
        action: String,
        /// Server the step targeted, when known.
        server: Option<u64>,
        /// Partition involved, when the step was partition-scoped.
        partition: Option<u64>,
        /// Attempts made before giving up.
        attempts: u64,
        /// The final error.
        error: String,
    },
    /// The actuator re-diffed its intended plan against the cluster after
    /// the step queue drained and re-issued or redistributed work.
    PlanReconciled {
        /// Reconciliation round within the current plan (1-based).
        round: u64,
        /// Steps re-enqueued by the diff.
        reissued: u64,
        /// Partitions redistributed away from dead or abandoned slots.
        redistributed: u64,
        /// Slots given up on (server lost or never provisioned).
        abandoned: u64,
    },
    /// The decision maker entered or left degraded mode on stale metrics.
    DegradedMode {
        /// True on entry, false on recovery.
        entered: bool,
        /// Age of the newest good monitoring data, milliseconds.
        age_ms: u64,
        /// What degradation implies (held classification, vetoed scale-in).
        detail: String,
    },
    /// A batch of WAL records became durable on one server (group commit).
    WalAppend {
        /// Server whose log was appended to.
        server: u64,
        /// Records in the synced batch.
        records: u64,
        /// Bytes made durable.
        bytes: u64,
    },
    /// A re-homed partition began WAL replay on its new server.
    RecoveryStarted {
        /// Server performing the replay.
        server: u64,
        /// Partition (region) being recovered.
        region: u64,
        /// WAL backlog to replay, bytes.
        wal_bytes: u64,
    },
    /// WAL replay finished and the partition is serving again.
    RecoveryCompleted {
        /// Server that performed the replay.
        server: u64,
        /// Partition (region) recovered.
        region: u64,
        /// WAL bytes replayed.
        wal_bytes: u64,
        /// Simulated replay duration, milliseconds.
        duration_ms: u64,
    },
    /// A frozen memstore was handed to the background flusher.
    FlushQueued {
        /// Server whose store froze the memstore.
        server: u64,
        /// Region the memstore belongs to.
        region: u64,
        /// Heap bytes frozen (the flush debt added).
        bytes: u64,
        /// Frozen memstores awaiting flush after this enqueue.
        queue_depth: u64,
    },
    /// A background flush published its HFile.
    FlushCompleted {
        /// Server the flusher ran on.
        server: u64,
        /// Region flushed.
        region: u64,
        /// Bytes written to the published file.
        bytes: u64,
        /// Flush jobs still queued behind this one.
        pending: u64,
    },
    /// A file run was handed to the background compactor pool.
    CompactionQueued {
        /// Server whose store enqueued the job.
        server: u64,
        /// Region the files belong to.
        region: u64,
        /// Store files in the claimed run.
        files: u64,
    },
    /// A writer stalled on maintenance backpressure (frozen-queue bound or
    /// the blocking-store-files wall).
    WriterStalled {
        /// Server whose writer stalled.
        server: u64,
        /// Region the stalled write targeted.
        region: u64,
        /// Stalled wall-clock accrued, milliseconds.
        stall_ms: u64,
        /// What the writer hit: `frozen_queue` or `blocking_files`.
        reason: String,
    },
    /// A checksum mismatch was detected on a stored block or WAL record.
    CorruptionDetected {
        /// Server that detected the damage.
        server: u64,
        /// File id of the damaged store file or WAL pseudo-file.
        file: u64,
        /// Byte offset of the first bad block/record.
        offset: u64,
        /// Human-readable description of what was damaged.
        detail: String,
    },
}

/// Discriminant of a [`TelemetryEvent`], for filters and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum EventKind {
    MonitorSample,
    HealthAssessed,
    NodeDelta,
    PartitionClassified,
    PlanComputed,
    RuleFired,
    ActionStarted,
    ActionCompleted,
    ReconfigStarted,
    ReconfigCompleted,
    NodeProvisioned,
    NodeDecommissioned,
    CacheReport,
    MemstoreFlush,
    RegionSplit,
    CompactionDone,
    LocalitySample,
    FaultInjected,
    RetryScheduled,
    StepFailed,
    PlanReconciled,
    DegradedMode,
    WalAppend,
    RecoveryStarted,
    RecoveryCompleted,
    FlushQueued,
    FlushCompleted,
    CompactionQueued,
    WriterStalled,
    CorruptionDetected,
}

impl EventKind {
    /// Stable name used as the JSON `"type"` discriminator.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::MonitorSample => "monitor_sample",
            EventKind::HealthAssessed => "health_assessed",
            EventKind::NodeDelta => "node_delta",
            EventKind::PartitionClassified => "partition_classified",
            EventKind::PlanComputed => "plan_computed",
            EventKind::RuleFired => "rule_fired",
            EventKind::ActionStarted => "action_started",
            EventKind::ActionCompleted => "action_completed",
            EventKind::ReconfigStarted => "reconfig_started",
            EventKind::ReconfigCompleted => "reconfig_completed",
            EventKind::NodeProvisioned => "node_provisioned",
            EventKind::NodeDecommissioned => "node_decommissioned",
            EventKind::CacheReport => "cache_report",
            EventKind::MemstoreFlush => "memstore_flush",
            EventKind::RegionSplit => "region_split",
            EventKind::CompactionDone => "compaction_done",
            EventKind::LocalitySample => "locality_sample",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RetryScheduled => "retry_scheduled",
            EventKind::StepFailed => "step_failed",
            EventKind::PlanReconciled => "plan_reconciled",
            EventKind::DegradedMode => "degraded_mode",
            EventKind::WalAppend => "wal_append",
            EventKind::RecoveryStarted => "recovery_started",
            EventKind::RecoveryCompleted => "recovery_completed",
            EventKind::FlushQueued => "flush_queued",
            EventKind::FlushCompleted => "flush_completed",
            EventKind::CompactionQueued => "compaction_queued",
            EventKind::WriterStalled => "writer_stalled",
            EventKind::CorruptionDetected => "corruption_detected",
        }
    }
}

impl TelemetryEvent {
    /// This event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            TelemetryEvent::MonitorSample { .. } => EventKind::MonitorSample,
            TelemetryEvent::HealthAssessed { .. } => EventKind::HealthAssessed,
            TelemetryEvent::NodeDelta { .. } => EventKind::NodeDelta,
            TelemetryEvent::PartitionClassified { .. } => EventKind::PartitionClassified,
            TelemetryEvent::PlanComputed { .. } => EventKind::PlanComputed,
            TelemetryEvent::RuleFired { .. } => EventKind::RuleFired,
            TelemetryEvent::ActionStarted { .. } => EventKind::ActionStarted,
            TelemetryEvent::ActionCompleted { .. } => EventKind::ActionCompleted,
            TelemetryEvent::ReconfigStarted { .. } => EventKind::ReconfigStarted,
            TelemetryEvent::ReconfigCompleted { .. } => EventKind::ReconfigCompleted,
            TelemetryEvent::NodeProvisioned { .. } => EventKind::NodeProvisioned,
            TelemetryEvent::NodeDecommissioned { .. } => EventKind::NodeDecommissioned,
            TelemetryEvent::CacheReport { .. } => EventKind::CacheReport,
            TelemetryEvent::MemstoreFlush { .. } => EventKind::MemstoreFlush,
            TelemetryEvent::RegionSplit { .. } => EventKind::RegionSplit,
            TelemetryEvent::CompactionDone { .. } => EventKind::CompactionDone,
            TelemetryEvent::LocalitySample { .. } => EventKind::LocalitySample,
            TelemetryEvent::FaultInjected { .. } => EventKind::FaultInjected,
            TelemetryEvent::RetryScheduled { .. } => EventKind::RetryScheduled,
            TelemetryEvent::StepFailed { .. } => EventKind::StepFailed,
            TelemetryEvent::PlanReconciled { .. } => EventKind::PlanReconciled,
            TelemetryEvent::DegradedMode { .. } => EventKind::DegradedMode,
            TelemetryEvent::WalAppend { .. } => EventKind::WalAppend,
            TelemetryEvent::RecoveryStarted { .. } => EventKind::RecoveryStarted,
            TelemetryEvent::RecoveryCompleted { .. } => EventKind::RecoveryCompleted,
            TelemetryEvent::FlushQueued { .. } => EventKind::FlushQueued,
            TelemetryEvent::FlushCompleted { .. } => EventKind::FlushCompleted,
            TelemetryEvent::CompactionQueued { .. } => EventKind::CompactionQueued,
            TelemetryEvent::WriterStalled { .. } => EventKind::WriterStalled,
            TelemetryEvent::CorruptionDetected { .. } => EventKind::CorruptionDetected,
        }
    }

    /// How important the event is (gated by the pipeline's verbosity).
    pub fn level(&self) -> Level {
        match self.kind() {
            EventKind::MonitorSample
            | EventKind::CacheReport
            | EventKind::MemstoreFlush
            | EventKind::CompactionDone
            | EventKind::LocalitySample
            | EventKind::WalAppend
            | EventKind::FlushQueued
            | EventKind::FlushCompleted
            | EventKind::CompactionQueued => Level::Debug,
            _ => Level::Info,
        }
    }
}

/// A timestamped, sequenced event as stored by the sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time of the event, milliseconds since run start.
    pub time_ms: u64,
    /// Emission order within the run (monotone, gap-free per pipeline).
    pub seq: u64,
    /// The event payload.
    pub data: TelemetryEvent,
}

fn opt_u64(v: &Option<u64>) -> Value {
    match v {
        Some(n) => json!(*n),
        None => Value::Null,
    }
}

impl Event {
    /// Encodes the event as a flat JSON object.
    pub fn to_json(&self) -> Value {
        let mut obj = match &self.data {
            TelemetryEvent::MonitorSample { server, cpu, io_wait, mem, locality } => json!({
                "server": *server, "cpu": *cpu, "io_wait": *io_wait,
                "mem": *mem, "locality": *locality,
            }),
            TelemetryEvent::HealthAssessed {
                online,
                overloaded,
                underloaded,
                cpu_high,
                io_high,
                cpu_low,
                io_low,
            } => json!({
                "online": *online, "overloaded": overloaded, "underloaded": underloaded,
                "cpu_high": *cpu_high, "io_high": *io_high,
                "cpu_low": *cpu_low, "io_low": *io_low,
            }),
            TelemetryEvent::NodeDelta { current, delta, overloaded, underloaded } => json!({
                "current": *current, "delta": *delta,
                "overloaded": *overloaded, "underloaded": *underloaded,
            }),
            TelemetryEvent::PartitionClassified {
                partition,
                profile,
                read_frac,
                write_frac,
                scan_frac,
                threshold,
            } => json!({
                "partition": *partition, "profile": profile, "read_frac": *read_frac,
                "write_frac": *write_frac, "scan_frac": *scan_frac, "threshold": *threshold,
            }),
            TelemetryEvent::PlanComputed { moves, restarts, decommissions, groups } => json!({
                "moves": *moves, "restarts": *restarts, "decommissions": *decommissions,
                "groups": groups,
            }),
            TelemetryEvent::RuleFired { controller, rule, observed, threshold, action } => json!({
                "controller": controller, "rule": rule, "observed": *observed,
                "threshold": *threshold, "action": action,
            }),
            TelemetryEvent::ActionStarted { action, server, partition, detail } => json!({
                "action": action, "server": *server,
                "partition": opt_u64(partition), "detail": detail,
            }),
            TelemetryEvent::ActionCompleted { action, server, partition, duration_ms } => json!({
                "action": action, "server": *server,
                "partition": opt_u64(partition), "duration_ms": *duration_ms,
            }),
            TelemetryEvent::ReconfigStarted { reason } => json!({ "reason": reason }),
            TelemetryEvent::ReconfigCompleted { duration_ms } => {
                json!({ "duration_ms": *duration_ms })
            }
            TelemetryEvent::NodeProvisioned { server, profile } => {
                json!({ "server": *server, "profile": profile })
            }
            TelemetryEvent::NodeDecommissioned { server } => json!({ "server": *server }),
            TelemetryEvent::CacheReport { server, hits, misses, evictions } => json!({
                "server": *server, "hits": *hits, "misses": *misses, "evictions": *evictions,
            }),
            TelemetryEvent::MemstoreFlush { server, region, bytes } => {
                json!({ "server": *server, "region": *region, "bytes": *bytes })
            }
            TelemetryEvent::RegionSplit { server, region, new_region } => {
                json!({ "server": *server, "region": *region, "new_region": *new_region })
            }
            TelemetryEvent::CompactionDone { server, bytes } => {
                json!({ "server": *server, "bytes": *bytes })
            }
            TelemetryEvent::LocalitySample { server, value } => {
                json!({ "server": *server, "value": *value })
            }
            TelemetryEvent::FaultInjected { kind, target, detail } => {
                json!({ "kind": kind, "target": opt_u64(target), "detail": detail })
            }
            TelemetryEvent::RetryScheduled {
                action,
                server,
                partition,
                attempt,
                backoff_ms,
                error,
            } => {
                json!({
                    "action": action, "server": opt_u64(server), "partition": opt_u64(partition),
                    "attempt": *attempt, "backoff_ms": *backoff_ms, "error": error,
                })
            }
            TelemetryEvent::StepFailed { action, server, partition, attempts, error } => json!({
                "action": action, "server": opt_u64(server), "partition": opt_u64(partition),
                "attempts": *attempts, "error": error,
            }),
            TelemetryEvent::PlanReconciled { round, reissued, redistributed, abandoned } => json!({
                "round": *round, "reissued": *reissued,
                "redistributed": *redistributed, "abandoned": *abandoned,
            }),
            TelemetryEvent::DegradedMode { entered, age_ms, detail } => {
                json!({ "entered": *entered, "age_ms": *age_ms, "detail": detail })
            }
            TelemetryEvent::WalAppend { server, records, bytes } => {
                json!({ "server": *server, "records": *records, "bytes": *bytes })
            }
            TelemetryEvent::RecoveryStarted { server, region, wal_bytes } => {
                json!({ "server": *server, "region": *region, "wal_bytes": *wal_bytes })
            }
            TelemetryEvent::RecoveryCompleted { server, region, wal_bytes, duration_ms } => json!({
                "server": *server, "region": *region,
                "wal_bytes": *wal_bytes, "duration_ms": *duration_ms,
            }),
            TelemetryEvent::FlushQueued { server, region, bytes, queue_depth } => json!({
                "server": *server, "region": *region,
                "bytes": *bytes, "queue_depth": *queue_depth,
            }),
            TelemetryEvent::FlushCompleted { server, region, bytes, pending } => json!({
                "server": *server, "region": *region, "bytes": *bytes, "pending": *pending,
            }),
            TelemetryEvent::CompactionQueued { server, region, files } => {
                json!({ "server": *server, "region": *region, "files": *files })
            }
            TelemetryEvent::WriterStalled { server, region, stall_ms, reason } => json!({
                "server": *server, "region": *region, "stall_ms": *stall_ms, "reason": reason,
            }),
            TelemetryEvent::CorruptionDetected { server, file, offset, detail } => json!({
                "server": *server, "file": *file, "offset": *offset, "detail": detail,
            }),
        };
        if let Value::Object(map) = &mut obj {
            map.insert("t_ms".to_string(), json!(self.time_ms));
            map.insert("seq".to_string(), json!(self.seq));
            map.insert("type".to_string(), json!(self.data.kind().as_str()));
        }
        obj
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("event encoding is infallible")
    }

    /// Decodes an event from its JSON object form. Returns `None` when the
    /// object is not a well-formed event.
    pub fn from_json(v: &Value) -> Option<Event> {
        let time_ms = v["t_ms"].as_u64()?;
        let seq = v["seq"].as_u64()?;
        let ty = v["type"].as_str()?;
        let f = |key: &str| v[key].as_f64();
        let u = |key: &str| v[key].as_u64();
        let s = |key: &str| v[key].as_str().map(str::to_string);
        let opt = |key: &str| {
            if v[key].is_null() {
                Some(None)
            } else {
                v[key].as_u64().map(Some)
            }
        };
        let vec_u64 = |key: &str| -> Option<Vec<u64>> {
            v[key].as_array()?.iter().map(Value::as_u64).collect()
        };
        let data = match ty {
            "monitor_sample" => TelemetryEvent::MonitorSample {
                server: u("server")?,
                cpu: f("cpu")?,
                io_wait: f("io_wait")?,
                mem: f("mem")?,
                locality: f("locality")?,
            },
            "health_assessed" => TelemetryEvent::HealthAssessed {
                online: u("online")?,
                overloaded: vec_u64("overloaded")?,
                underloaded: vec_u64("underloaded")?,
                cpu_high: f("cpu_high")?,
                io_high: f("io_high")?,
                cpu_low: f("cpu_low")?,
                io_low: f("io_low")?,
            },
            "node_delta" => TelemetryEvent::NodeDelta {
                current: u("current")?,
                delta: f("delta")? as i64,
                overloaded: u("overloaded")?,
                underloaded: u("underloaded")?,
            },
            "partition_classified" => TelemetryEvent::PartitionClassified {
                partition: u("partition")?,
                profile: s("profile")?,
                read_frac: f("read_frac")?,
                write_frac: f("write_frac")?,
                scan_frac: f("scan_frac")?,
                threshold: f("threshold")?,
            },
            "plan_computed" => TelemetryEvent::PlanComputed {
                moves: u("moves")?,
                restarts: u("restarts")?,
                decommissions: u("decommissions")?,
                groups: v["groups"]
                    .as_array()?
                    .iter()
                    .map(|g| Some((g[0].as_str()?.to_string(), g[1].as_u64()?)))
                    .collect::<Option<Vec<_>>>()?,
            },
            "rule_fired" => TelemetryEvent::RuleFired {
                controller: s("controller")?,
                rule: s("rule")?,
                observed: f("observed")?,
                threshold: f("threshold")?,
                action: s("action")?,
            },
            "action_started" => TelemetryEvent::ActionStarted {
                action: s("action")?,
                server: u("server")?,
                partition: opt("partition")?,
                detail: s("detail")?,
            },
            "action_completed" => TelemetryEvent::ActionCompleted {
                action: s("action")?,
                server: u("server")?,
                partition: opt("partition")?,
                duration_ms: u("duration_ms")?,
            },
            "reconfig_started" => TelemetryEvent::ReconfigStarted { reason: s("reason")? },
            "reconfig_completed" => {
                TelemetryEvent::ReconfigCompleted { duration_ms: u("duration_ms")? }
            }
            "node_provisioned" => {
                TelemetryEvent::NodeProvisioned { server: u("server")?, profile: s("profile")? }
            }
            "node_decommissioned" => TelemetryEvent::NodeDecommissioned { server: u("server")? },
            "cache_report" => TelemetryEvent::CacheReport {
                server: u("server")?,
                hits: u("hits")?,
                misses: u("misses")?,
                evictions: u("evictions")?,
            },
            "memstore_flush" => TelemetryEvent::MemstoreFlush {
                server: u("server")?,
                region: u("region")?,
                bytes: u("bytes")?,
            },
            "region_split" => TelemetryEvent::RegionSplit {
                server: u("server")?,
                region: u("region")?,
                new_region: u("new_region")?,
            },
            "compaction_done" => {
                TelemetryEvent::CompactionDone { server: u("server")?, bytes: u("bytes")? }
            }
            "locality_sample" => {
                TelemetryEvent::LocalitySample { server: u("server")?, value: f("value")? }
            }
            "fault_injected" => TelemetryEvent::FaultInjected {
                kind: s("kind")?,
                target: opt("target")?,
                detail: s("detail")?,
            },
            "retry_scheduled" => TelemetryEvent::RetryScheduled {
                action: s("action")?,
                server: opt("server")?,
                partition: opt("partition")?,
                attempt: u("attempt")?,
                backoff_ms: u("backoff_ms")?,
                error: s("error")?,
            },
            "step_failed" => TelemetryEvent::StepFailed {
                action: s("action")?,
                server: opt("server")?,
                partition: opt("partition")?,
                attempts: u("attempts")?,
                error: s("error")?,
            },
            "plan_reconciled" => TelemetryEvent::PlanReconciled {
                round: u("round")?,
                reissued: u("reissued")?,
                redistributed: u("redistributed")?,
                abandoned: u("abandoned")?,
            },
            "degraded_mode" => TelemetryEvent::DegradedMode {
                entered: v["entered"].as_bool()?,
                age_ms: u("age_ms")?,
                detail: s("detail")?,
            },
            "wal_append" => TelemetryEvent::WalAppend {
                server: u("server")?,
                records: u("records")?,
                bytes: u("bytes")?,
            },
            "recovery_started" => TelemetryEvent::RecoveryStarted {
                server: u("server")?,
                region: u("region")?,
                wal_bytes: u("wal_bytes")?,
            },
            "recovery_completed" => TelemetryEvent::RecoveryCompleted {
                server: u("server")?,
                region: u("region")?,
                wal_bytes: u("wal_bytes")?,
                duration_ms: u("duration_ms")?,
            },
            "flush_queued" => TelemetryEvent::FlushQueued {
                server: u("server")?,
                region: u("region")?,
                bytes: u("bytes")?,
                queue_depth: u("queue_depth")?,
            },
            "flush_completed" => TelemetryEvent::FlushCompleted {
                server: u("server")?,
                region: u("region")?,
                bytes: u("bytes")?,
                pending: u("pending")?,
            },
            "compaction_queued" => TelemetryEvent::CompactionQueued {
                server: u("server")?,
                region: u("region")?,
                files: u("files")?,
            },
            "writer_stalled" => TelemetryEvent::WriterStalled {
                server: u("server")?,
                region: u("region")?,
                stall_ms: u("stall_ms")?,
                reason: s("reason")?,
            },
            "corruption_detected" => TelemetryEvent::CorruptionDetected {
                server: u("server")?,
                file: u("file")?,
                offset: u("offset")?,
                detail: s("detail")?,
            },
            _ => return None,
        };
        Some(Event { time_ms, seq, data })
    }

    /// Decodes one JSONL line.
    pub fn from_json_line(line: &str) -> Option<Event> {
        Event::from_json(&serde_json::from_str(line).ok()?)
    }
}

/// Parses a whole JSONL trace, skipping blank lines. Returns `None` if any
/// non-blank line fails to decode.
pub fn parse_trace(text: &str) -> Option<Vec<Event>> {
    text.lines().filter(|l| !l.trim().is_empty()).map(Event::from_json_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::MonitorSample {
                server: 3,
                cpu: 0.91,
                io_wait: 0.12,
                mem: 0.4,
                locality: 0.85,
            },
            TelemetryEvent::HealthAssessed {
                online: 4,
                overloaded: vec![1, 3],
                underloaded: vec![],
                cpu_high: 0.85,
                io_high: 0.3,
                cpu_low: 0.25,
                io_low: 0.05,
            },
            TelemetryEvent::NodeDelta { current: 4, delta: 2, overloaded: 2, underloaded: 0 },
            TelemetryEvent::PartitionClassified {
                partition: 7,
                profile: "read".to_string(),
                read_frac: 0.8,
                write_frac: 0.15,
                scan_frac: 0.05,
                threshold: 0.6,
            },
            TelemetryEvent::PlanComputed {
                moves: 5,
                restarts: 2,
                decommissions: 0,
                groups: vec![("read".to_string(), 3), ("write".to_string(), 1)],
            },
            TelemetryEvent::RuleFired {
                controller: "autoscaler".to_string(),
                rule: "cpu-high".to_string(),
                observed: 0.92,
                threshold: 0.85,
                action: "scale_out".to_string(),
            },
            TelemetryEvent::ActionStarted {
                action: "move_in".to_string(),
                server: 2,
                partition: Some(7),
                detail: "to read group".to_string(),
            },
            TelemetryEvent::ActionCompleted {
                action: "provision".to_string(),
                server: 9,
                partition: None,
                duration_ms: 45_000,
            },
            TelemetryEvent::ReconfigStarted { reason: "2 overloaded".to_string() },
            TelemetryEvent::ReconfigCompleted { duration_ms: 120_000 },
            TelemetryEvent::NodeProvisioned { server: 9, profile: "read".to_string() },
            TelemetryEvent::NodeDecommissioned { server: 1 },
            TelemetryEvent::CacheReport { server: 1, hits: 900, misses: 100, evictions: 20 },
            TelemetryEvent::MemstoreFlush { server: 1, region: 4, bytes: 65_536 },
            TelemetryEvent::RegionSplit { server: 1, region: 4, new_region: 11 },
            TelemetryEvent::CompactionDone { server: 2, bytes: 1 << 20 },
            TelemetryEvent::LocalitySample { server: 2, value: 0.75 },
            TelemetryEvent::FaultInjected {
                kind: "server_crash".to_string(),
                target: Some(3),
                detail: "server 3 crashed; 4 partitions orphaned".to_string(),
            },
            TelemetryEvent::RetryScheduled {
                action: "provision".to_string(),
                server: None,
                partition: None,
                attempt: 1,
                backoff_ms: 2_000,
                error: "injected provision failure".to_string(),
            },
            TelemetryEvent::StepFailed {
                action: "move_in".to_string(),
                server: Some(4),
                partition: Some(7),
                attempts: 4,
                error: "server 4 unavailable".to_string(),
            },
            TelemetryEvent::PlanReconciled {
                round: 1,
                reissued: 2,
                redistributed: 4,
                abandoned: 1,
            },
            TelemetryEvent::DegradedMode {
                entered: true,
                age_ms: 95_000,
                detail: "metrics stale; scale-in vetoed".to_string(),
            },
            TelemetryEvent::WalAppend { server: 2, records: 16, bytes: 2_048 },
            TelemetryEvent::RecoveryStarted { server: 5, region: 7, wal_bytes: 48 << 20 },
            TelemetryEvent::RecoveryCompleted {
                server: 5,
                region: 7,
                wal_bytes: 48 << 20,
                duration_ms: 960,
            },
            TelemetryEvent::CorruptionDetected {
                server: 3,
                file: 42,
                offset: 4_096,
                detail: "block checksum mismatch in file 42".to_string(),
            },
            TelemetryEvent::FlushQueued { server: 2, region: 4, bytes: 4 << 20, queue_depth: 2 },
            TelemetryEvent::FlushCompleted { server: 2, region: 4, bytes: 3 << 20, pending: 1 },
            TelemetryEvent::CompactionQueued { server: 2, region: 4, files: 6 },
            TelemetryEvent::WriterStalled {
                server: 2,
                region: 4,
                stall_ms: 250,
                reason: "blocking_files".to_string(),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        let events: Vec<Event> = samples()
            .into_iter()
            .enumerate()
            .map(|(i, data)| Event { time_ms: 1000 * i as u64, seq: i as u64, data })
            .collect();
        let text: String =
            events.iter().map(|e| e.to_json_line() + "\n").collect::<Vec<_>>().join("");
        let parsed = parse_trace(&text).expect("trace parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::from_json_line("{}").is_none());
        assert!(Event::from_json_line("not json").is_none());
        assert!(Event::from_json_line("{\"t_ms\": 1, \"seq\": 0, \"type\": \"no_such_event\"}")
            .is_none());
    }

    #[test]
    fn levels_split_audit_from_debug() {
        for e in samples() {
            let expected = matches!(
                e.kind(),
                EventKind::MonitorSample
                    | EventKind::CacheReport
                    | EventKind::MemstoreFlush
                    | EventKind::CompactionDone
                    | EventKind::LocalitySample
                    | EventKind::WalAppend
                    | EventKind::FlushQueued
                    | EventKind::FlushCompleted
                    | EventKind::CompactionQueued
            );
            assert_eq!(e.level() == Level::Debug, expected, "{:?}", e.kind());
        }
    }
}
