//! Label-keyed counters, gauges and fixed-bucket histograms.
//!
//! Metric names are `&'static str` (they are part of the code, not data);
//! label pairs distinguish instances (`server="3"`, `action="move_in"`).
//! Histograms use a fixed log-spaced bucket layout tuned for simulated
//! durations in milliseconds (1 ms – 10 min), so percentile queries are
//! O(buckets) and fully deterministic.

use std::collections::BTreeMap;

/// Identity of one metric instance: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `met_actions_total`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    /// Renders the key in Prometheus-like form:
    /// `name{label="value",...}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Bucket upper bounds (inclusive) for duration histograms, in ms.
pub const BUCKET_BOUNDS_MS: [f64; 18] = [
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
    30_000.0, 60_000.0, 120_000.0, 300_000.0, 600_000.0,
];

#[derive(Debug, Clone)]
struct Histogram {
    /// One count per bound, plus a final overflow bucket.
    counts: [u64; BUCKET_BOUNDS_MS.len() + 1],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS_MS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = BUCKET_BOUNDS_MS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Upper-bound percentile estimate: the smallest bucket bound such
    /// that at least `q` of the observations are ≤ it. Observations in
    /// the overflow bucket report the true maximum.
    fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Some(if idx < BUCKET_BOUNDS_MS.len() {
                    BUCKET_BOUNDS_MS[idx].min(self.max)
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.percentile(0.50).unwrap_or(0.0),
            p95: self.percentile(0.95).unwrap_or(0.0),
            p99: self.percentile(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Median (bucket-bound estimate).
    pub p50: f64,
    /// 95th percentile (bucket-bound estimate).
    pub p95: f64,
    /// 99th percentile (bucket-bound estimate).
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The metric store. All maps are ordered so snapshots render stably.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to a counter, creating it at zero first if needed.
    pub fn counter_add(&mut self, name: &'static str, labels: &[(&str, &str)], n: u64) {
        *self.counters.entry(MetricKey::new(name, labels)).or_insert(0) += n;
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// One labelled counter's value (0 when absent).
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&MetricKey::new(name, labels)).copied().unwrap_or(0)
    }

    /// A counter summed over every label set sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| v).sum()
    }

    /// One labelled gauge's value.
    pub fn gauge(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// One labelled histogram's digest.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSummary> {
        self.histograms.get(&MetricKey::new(name, labels)).map(Histogram::summary)
    }

    /// Applies every update buffered in `buf`, in buffer order.
    ///
    /// This is the reduction half of the sharded-metrics scheme: parallel
    /// phases record into private [`MetricsBuffer`]s and the coordinator
    /// merges them in a fixed (shard-ID) order, so the registry contents are
    /// identical to what the same updates applied inline would produce.
    pub fn merge(&mut self, buf: &MetricsBuffer) {
        for (key, op) in &buf.ops {
            match op {
                BufferedOp::CounterAdd(n) => {
                    *self.counters.entry(key.clone()).or_insert(0) += n;
                }
                BufferedOp::GaugeSet(v) => {
                    self.gauges.insert(key.clone(), *v);
                }
                BufferedOp::Observe(v) => {
                    self.histograms.entry(key.clone()).or_insert_with(Histogram::new).observe(*v);
                }
            }
        }
    }

    /// A copy of every metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self.histograms.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
        }
    }
}

/// One update queued in a [`MetricsBuffer`].
#[derive(Debug, Clone, PartialEq)]
enum BufferedOp {
    CounterAdd(u64),
    GaugeSet(f64),
    Observe(f64),
}

/// A private, lock-free staging area for metric updates.
///
/// Parallel simulation shards each own one buffer and record into it without
/// synchronization; the coordinating thread then flushes all buffers in
/// shard-ID order under a single registry lock
/// ([`MetricsRegistry::merge`] / `Telemetry::flush_buffers`). Updates are
/// replayed in recording order, so a flushed buffer is indistinguishable
/// from the same calls made directly against the registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsBuffer {
    ops: Vec<(MetricKey, BufferedOp)>,
}

impl MetricsBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        MetricsBuffer::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of buffered updates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Drops all buffered updates, keeping the allocation. Long-lived
    /// shards clear and refill one buffer per tick instead of allocating
    /// a fresh buffer per server per tick.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Buffers a counter increment.
    pub fn counter_add(&mut self, name: &'static str, labels: &[(&str, &str)], n: u64) {
        self.ops.push((MetricKey::new(name, labels), BufferedOp::CounterAdd(n)));
    }

    /// Buffers a gauge write.
    pub fn gauge_set(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.ops.push((MetricKey::new(name, labels), BufferedOp::GaugeSet(value)));
    }

    /// Buffers a histogram observation.
    pub fn observe(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.ops.push((MetricKey::new(name, labels), BufferedOp::Observe(value)));
    }
}

/// Sorted point-in-time copy of a registry, for reports.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// All gauges, sorted by key.
    pub gauges: Vec<(MetricKey, f64)>,
    /// All histogram digests, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// A counter summed over every label set sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| v).sum()
    }

    /// Finds a histogram digest by metric name (first label set wins).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(k, _)| k.name == name).map(|(_, h)| h)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as-is, histograms as summaries
    /// with `quantile` labels plus `_sum`/`_count` series. Output is fully
    /// ordered (snapshots are key-sorted), so two renders of equal
    /// snapshots are byte-identical — scrapeable *and* diffable.
    pub fn render_prometheus(&self) -> String {
        fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
            if last.as_deref() != Some(name) {
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                *last = Some(name.to_string());
            }
        }
        let mut out = String::new();
        let mut last: Option<String> = None;
        for (key, value) in &self.counters {
            type_line(&mut out, &mut last, &key.name, "counter");
            write_series(&mut out, &key.name, "", &key.labels, &[], &value.to_string());
        }
        last = None;
        for (key, value) in &self.gauges {
            type_line(&mut out, &mut last, &key.name, "gauge");
            write_series(&mut out, &key.name, "", &key.labels, &[], &fmt_f64(*value));
        }
        last = None;
        for (key, h) in &self.histograms {
            type_line(&mut out, &mut last, &key.name, "summary");
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                write_series(&mut out, &key.name, "", &key.labels, &[("quantile", q)], &fmt_f64(v));
            }
            write_series(&mut out, &key.name, "_sum", &key.labels, &[], &fmt_f64(h.sum));
            write_series(&mut out, &key.name, "_count", &key.labels, &[], &h.count.to_string());
        }
        out
    }
}

/// Formats an `f64` the way Prometheus expects (shortest round-trip
/// representation; Rust's `Display` already provides it).
fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() };
    }
    format!("{v}")
}

/// Appends one exposition line: `name[suffix]{labels,extras} value`.
fn write_series(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extras: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || !extras.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extras.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_per_label_and_total() {
        let mut r = MetricsRegistry::new();
        r.counter_add("actions", &[("kind", "move")], 2);
        r.counter_add("actions", &[("kind", "move")], 3);
        r.counter_add("actions", &[("kind", "compact")], 1);
        // Label order must not matter for identity.
        r.counter_add("multi", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("multi", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter("actions", &[("kind", "move")]), 5);
        assert_eq!(r.counter("actions", &[("kind", "compact")]), 1);
        assert_eq!(r.counter("actions", &[("kind", "absent")]), 0);
        assert_eq!(r.counter_total("actions"), 6);
        assert_eq!(r.counter("multi", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn histogram_percentiles_track_bucket_bounds() {
        let mut r = MetricsRegistry::new();
        // 100 observations: 1..=100 ms.
        for v in 1..=100 {
            r.observe("lat", &[], v as f64);
        }
        let h = r.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        // Rank 50 lands in the (25, 50] bucket → bound 50.
        assert_eq!(h.p50, 50.0);
        // Rank 95 lands in the (50, 100] bucket → bound 100.
        assert_eq!(h.p95, 100.0);
        assert_eq!(h.p99, 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_overflow_and_singleton() {
        let mut r = MetricsRegistry::new();
        r.observe("big", &[], 10_000_000.0); // beyond the last bound
        let h = r.histogram("big", &[]).unwrap();
        assert_eq!(h.p50, 10_000_000.0);
        assert_eq!(h.p99, 10_000_000.0);

        let mut r = MetricsRegistry::new();
        r.observe("one", &[], 3.0);
        let h = r.histogram("one", &[]).unwrap();
        // Single observation: every percentile is capped at the max.
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.p99, 3.0);
    }

    #[test]
    fn empty_histogram_is_absent() {
        let r = MetricsRegistry::new();
        assert!(r.histogram("nope", &[]).is_none());
        assert!(r.gauge("nope", &[]).is_none());
    }

    #[test]
    fn merged_buffers_match_direct_updates() {
        // Direct path.
        let mut direct = MetricsRegistry::new();
        direct.counter_add("hits", &[("server", "1")], 4);
        direct.counter_add("hits", &[("server", "2")], 6);
        direct.gauge_set("warmth", &[("server", "1")], 0.5);
        direct.gauge_set("warmth", &[("server", "2")], 0.9);
        direct.observe("lat", &[], 12.0);
        direct.observe("lat", &[], 80.0);

        // Buffered path: two shards flushed in ID order.
        let mut shard1 = MetricsBuffer::new();
        shard1.counter_add("hits", &[("server", "1")], 4);
        shard1.gauge_set("warmth", &[("server", "1")], 0.5);
        shard1.observe("lat", &[], 12.0);
        let mut shard2 = MetricsBuffer::new();
        shard2.counter_add("hits", &[("server", "2")], 6);
        shard2.gauge_set("warmth", &[("server", "2")], 0.9);
        shard2.observe("lat", &[], 80.0);
        assert_eq!(shard1.len(), 3);
        assert!(!shard2.is_empty());

        let mut merged = MetricsRegistry::new();
        merged.merge(&shard1);
        merged.merge(&shard2);

        let a = direct.snapshot();
        let b = merged.snapshot();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(a.histograms.len(), b.histograms.len());
        for ((ka, ha), (kb, hb)) in a.histograms.iter().zip(b.histograms.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn gauge_merge_keeps_last_write() {
        let mut buf = MetricsBuffer::new();
        buf.gauge_set("g", &[], 1.0);
        buf.gauge_set("g", &[], 2.0);
        let mut r = MetricsRegistry::new();
        r.merge(&buf);
        assert_eq!(r.gauge("g", &[]), Some(2.0));
    }

    #[test]
    fn empty_histogram_summary_is_all_zero() {
        // The registry never exposes an empty histogram (absent instead),
        // but the summary itself must stay well-defined: zeros, not NaN
        // or the ±infinity sentinels `min`/`max` start from.
        let h = Histogram::new().summary();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
        assert_eq!(h.p50, 0.0);
        assert_eq!(h.p95, 0.0);
        assert_eq!(h.p99, 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_all_report_that_sample() {
        let mut r = MetricsRegistry::new();
        // 7.0 falls in the (5, 10] bucket; the bound estimate (10) must be
        // capped at the observed max.
        r.observe("one", &[], 7.0);
        let h = r.histogram("one", &[]).unwrap();
        assert_eq!((h.min, h.max), (7.0, 7.0));
        assert_eq!(h.p50, 7.0);
        assert_eq!(h.p95, 7.0);
        assert_eq!(h.p99, 7.0);
    }

    #[test]
    fn all_equal_samples_collapse_every_percentile() {
        let mut r = MetricsRegistry::new();
        for _ in 0..1_000 {
            r.observe("flat", &[], 42.0);
        }
        let h = r.histogram("flat", &[]).unwrap();
        assert_eq!(h.count, 1_000);
        // All observations share one bucket (25, 50]; the bound estimate
        // (50) is capped at the max, so every percentile is exactly 42.
        assert_eq!(h.p50, 42.0);
        assert_eq!(h.p95, 42.0);
        assert_eq!(h.p99, 42.0);
        assert!((h.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_rendering_escapes_and_orders() {
        let mut r = MetricsRegistry::new();
        r.counter_add("actions_total", &[("kind", "a\"b\\c\nd")], 3);
        r.gauge_set("warmth", &[("server", "1")], 0.25);
        r.observe("span_ms", &[("span", "tick")], 2.0);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE actions_total counter\n"));
        assert!(text.contains("actions_total{kind=\"a\\\"b\\\\c\\nd\"} 3\n"));
        assert!(text.contains("# TYPE warmth gauge\nwarmth{server=\"1\"} 0.25\n"));
        assert!(text.contains("# TYPE span_ms summary\n"));
        assert!(text.contains("span_ms{span=\"tick\",quantile=\"0.5\"} 2\n"));
        assert!(text.contains("span_ms_sum{span=\"tick\"} 2\n"));
        assert!(text.contains("span_ms_count{span=\"tick\"} 1\n"));
        // A second render of an equal snapshot is byte-identical.
        assert_eq!(text, r.snapshot().render_prometheus());
    }

    #[test]
    fn render_is_prometheus_like() {
        let key = MetricKey::new("hits", &[("server", "3"), ("cache", "block")]);
        assert_eq!(key.render(), "hits{cache=\"block\",server=\"3\"}");
        assert_eq!(MetricKey::new("plain", &[]).render(), "plain");
    }
}
