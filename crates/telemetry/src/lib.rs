#![warn(missing_docs)]

//! Observability for the MeT reproduction: a metrics registry, a typed
//! decision audit trail, and trace export.
//!
//! The paper's control loop (monitor → decision maker → actuator, §4) is
//! opaque without instrumentation: when a run reconfigures the cluster it
//! is hard to answer *why* — which CPU reading crossed which threshold,
//! which classification produced which node group, which plan caused which
//! actuator steps. This crate makes every run auditable:
//!
//! * [`registry`] — counters, gauges and fixed-bucket histograms (with
//!   p50/p95/p99) keyed by static metric names plus label pairs. Lock
//!   cost is one uncontended mutex acquisition per update.
//! * [`event`] — the [`TelemetryEvent`] taxonomy: monitor samples,
//!   health assessments, per-partition classification verdicts, computed
//!   plans, rule firings and actuator actions, each carrying the observed
//!   values and thresholds that caused it.
//! * [`sink`] — where events go: an in-memory ring buffer (for tests and
//!   the report layer) and a JSONL exporter (one event per line) so any
//!   `exp-*` binary can dump a full trace per run.
//!
//! Everything is deterministic under the simulation clock: event
//! timestamps are [`SimTime`] values supplied by the caller and
//! "latency" histograms measure simulated durations. There are no
//! wall-clock reads.
//!
//! The [`Telemetry`] handle is a cheap-clone `Arc`; a disabled handle
//! ([`Telemetry::disabled`]) makes every call a no-op so instrumented
//! code pays nearly nothing when tracing is off.

pub mod event;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::{parse_trace, Event, EventKind, Level, TelemetryEvent};
pub use registry::{HistogramSummary, MetricsBuffer, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, RingBufferSink};
pub use span::{SpanContext, SpanGuard, SpanRecord, SpanStats};

use simcore::SimTime;
use std::sync::{Arc, Mutex};

/// How much of the event stream reaches the sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// No events are recorded (metrics still aggregate).
    Off,
    /// Decision/action events only — the audit trail.
    Info,
    /// Everything, including per-sample and per-flush debug events.
    Debug,
}

impl Verbosity {
    /// Parses a verbosity name (as used by `MET_TRACE_LEVEL`).
    pub fn parse(s: &str) -> Option<Verbosity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Verbosity::Off),
            "info" => Some(Verbosity::Info),
            "debug" | "all" => Some(Verbosity::Debug),
            _ => None,
        }
    }
}

struct Inner {
    verbosity: Verbosity,
    registry: MetricsRegistry,
    seq: u64,
    ring: Option<RingBufferSink>,
    jsonl: Option<JsonlSink>,
}

/// Handle to a telemetry pipeline. Clones share the same registry and
/// sinks; a handle created with [`Telemetry::disabled`] ignores all input.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(_) => f.write_str("Telemetry(enabled)"),
        }
    }
}

impl Telemetry {
    /// A no-op handle: every call returns immediately.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled pipeline with an empty registry and no sinks attached.
    pub fn new(verbosity: Verbosity) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner {
                verbosity,
                registry: MetricsRegistry::new(),
                seq: 0,
                ring: None,
                jsonl: None,
            }))),
        }
    }

    /// An enabled pipeline that keeps the most recent `capacity` events in
    /// memory — the usual configuration for tests and bench runs.
    pub fn with_ring(verbosity: Verbosity, capacity: usize) -> Self {
        let t = Telemetry::new(verbosity);
        t.attach_ring(capacity);
        t
    }

    /// True when this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches (or replaces) the in-memory ring buffer sink.
    pub fn attach_ring(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().ring = Some(RingBufferSink::new(capacity));
        }
    }

    /// Attaches a JSONL exporter writing one event per line to `path`.
    pub fn attach_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().jsonl = Some(JsonlSink::create(path)?);
        }
        Ok(())
    }

    /// Records an event at simulated time `now`. Filtered by verbosity:
    /// `Debug`-level events are dropped unless the pipeline runs at
    /// [`Verbosity::Debug`].
    pub fn emit(&self, now: SimTime, event: TelemetryEvent) {
        let Some(inner) = &self.inner else { return };
        let mut inner = inner.lock().unwrap();
        let keep = match inner.verbosity {
            Verbosity::Off => false,
            Verbosity::Info => event.level() == Level::Info,
            Verbosity::Debug => true,
        };
        if !keep {
            return;
        }
        let seq = inner.seq;
        inner.seq += 1;
        let event = Event { time_ms: now.as_millis(), seq, data: event };
        if let Some(jsonl) = &mut inner.jsonl {
            jsonl.write(&event);
        }
        if let Some(ring) = &mut inner.ring {
            ring.push(event);
        }
    }

    /// Contents of the ring buffer, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                inner.lock().unwrap().ring.as_ref().map(RingBufferSink::events).unwrap_or_default()
            }
        }
    }

    /// Flushes the JSONL sink (no-op otherwise).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(jsonl) = &mut inner.lock().unwrap().jsonl {
                jsonl.flush();
            }
        }
    }

    // ---- metrics ---------------------------------------------------------

    /// Adds `n` to a labelled counter.
    pub fn counter_add(&self, name: &'static str, labels: &[(&str, &str)], n: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().registry.counter_add(name, labels, n);
        }
    }

    /// Sets a labelled gauge to `value`.
    pub fn gauge_set(&self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().registry.gauge_set(name, labels, value);
        }
    }

    /// Records one observation (e.g. a simulated duration in ms) into a
    /// labelled histogram.
    pub fn observe(&self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().registry.observe(name, labels, value);
        }
    }

    /// Current value of a counter summed across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().unwrap().registry.counter_total(name),
        }
    }

    /// Current value of one labelled counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &'static str, labels: &[(&str, &str)]) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().unwrap().registry.counter(name, labels),
        }
    }

    /// Current value of one labelled gauge.
    pub fn gauge_value(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner.as_ref().and_then(|inner| inner.lock().unwrap().registry.gauge(name, labels))
    }

    /// Digest of one labelled histogram.
    pub fn histogram_summary(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSummary> {
        self.inner.as_ref().and_then(|inner| inner.lock().unwrap().registry.histogram(name, labels))
    }

    /// Applies one buffered batch of metric updates under a single lock
    /// acquisition. See [`MetricsBuffer`] for the sharded-recording scheme.
    pub fn flush_buffer(&self, buf: &MetricsBuffer) {
        if buf.is_empty() {
            return;
        }
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().registry.merge(buf);
        }
    }

    /// Applies many buffered batches, in iteration order, under a single
    /// lock acquisition. Callers pass shard buffers in shard-ID order so the
    /// merged registry is deterministic.
    pub fn flush_buffers<'a, I>(&self, buffers: I)
    where
        I: IntoIterator<Item = &'a MetricsBuffer>,
    {
        let Some(inner) = &self.inner else { return };
        let mut inner = inner.lock().unwrap();
        for buf in buffers {
            inner.registry.merge(buf);
        }
    }

    /// A point-in-time copy of every metric, for the report layer.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => inner.lock().unwrap().registry.snapshot(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format (see
    /// [`MetricsSnapshot::render_prometheus`]). Empty string when disabled.
    pub fn render_prometheus(&self) -> String {
        self.metrics().render_prometheus()
    }

    /// Opens a wall-clock profiling span (see [`span`](crate::span)).
    ///
    /// This is sugar for [`span::span_labeled`]: the profiler is
    /// process-global and gated by `MET_PROFILE`/`MET_SPANS`, *not* by this
    /// handle's enablement — a disabled handle still profiles when the
    /// profiler is armed, and vice versa, because wall-clock spans must
    /// never influence (or depend on) the deterministic event pipeline.
    pub fn span(&self, name: &'static str, labels: &[(&'static str, &str)]) -> SpanGuard {
        span::span_labeled(name, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.counter_add("x", &[], 3);
        t.emit(SimTime::ZERO, TelemetryEvent::ReconfigCompleted { duration_ms: 1 });
        assert_eq!(t.counter_total("x"), 0);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn flushed_buffers_land_in_the_registry() {
        let t = Telemetry::new(Verbosity::Off);
        let mut shard1 = MetricsBuffer::new();
        shard1.counter_add("hits", &[("server", "1")], 2);
        let mut shard2 = MetricsBuffer::new();
        shard2.counter_add("hits", &[("server", "2")], 3);
        shard2.gauge_set("ratio", &[("server", "2")], 0.75);
        t.flush_buffers([&shard1, &shard2]);
        assert_eq!(t.counter_total("hits"), 5);
        assert_eq!(t.gauge_value("ratio", &[("server", "2")]), Some(0.75));

        // A disabled handle swallows buffers like any other update.
        let off = Telemetry::disabled();
        off.flush_buffer(&shard1);
        assert_eq!(off.counter_total("hits"), 0);
    }

    #[test]
    fn verbosity_gates_debug_events() {
        let t = Telemetry::with_ring(Verbosity::Info, 16);
        t.emit(
            SimTime::from_secs(1),
            TelemetryEvent::MonitorSample {
                server: 1,
                cpu: 0.5,
                io_wait: 0.1,
                mem: 0.2,
                locality: 0.9,
            },
        );
        t.emit(SimTime::from_secs(2), TelemetryEvent::ReconfigCompleted { duration_ms: 7 });
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].data.kind(), EventKind::ReconfigCompleted);

        let t = Telemetry::with_ring(Verbosity::Debug, 16);
        t.emit(
            SimTime::from_secs(1),
            TelemetryEvent::MonitorSample {
                server: 1,
                cpu: 0.5,
                io_wait: 0.1,
                mem: 0.2,
                locality: 0.9,
            },
        );
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::with_ring(Verbosity::Debug, 8);
        let t2 = t.clone();
        t2.counter_add("met_actions_total", &[("action", "move_in")], 2);
        t.counter_add("met_actions_total", &[("action", "compact")], 1);
        assert_eq!(t.counter_total("met_actions_total"), 3);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let t = Telemetry::with_ring(Verbosity::Info, 32);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), TelemetryEvent::ReconfigCompleted { duration_ms: i });
        }
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
