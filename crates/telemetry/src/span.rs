//! Wall-clock span profiler and flight recorder.
//!
//! Everything else in this crate measures *simulated* time; this module
//! measures where *wall-clock* time goes inside a tick — per phase and per
//! worker thread — which is the only way to diagnose a parallel-engine
//! regression (the fig4 bench losing throughput at 2 threads cannot be
//! explained by sim-clock counters that are identical at every thread
//! count by construction).
//!
//! * [`span`] / [`span_labeled`] / [`Telemetry::span`](crate::Telemetry::span)
//!   open a [`SpanGuard`] that records its start/end wall-clock
//!   timestamps, thread id and parent span when dropped.
//! * Records land in per-thread buffers (one buffer per OS thread,
//!   registered on first use); recording never contends with other
//!   threads — only [`drain`] briefly locks each buffer.
//! * [`current_context`] captures the open span so `simcore::par` worker
//!   closures can parent their per-shard spans on the coordinator's
//!   phase span ([`SpanContext::child_shard`]).
//! * [`chrome_trace`] serializes records as Chrome trace-event JSON
//!   (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev));
//!   [`aggregate`] reduces them to per-phase statistics (count, total and
//!   self wall ms, exact p50/p95/p99); [`export_to_registry`] mirrors the
//!   aggregate into a [`Telemetry`](crate::Telemetry) registry as
//!   `profile_span_ms` histograms.
//!
//! # Trace invisibility
//!
//! Profiling is **off by default** and gated behind `MET_PROFILE` /
//! `MET_SPANS` (or [`set_enabled`]). The disabled path is a single relaxed
//! atomic load per call site — no allocation, no clock read, no lock.
//! Spans never write to the sim clock, any RNG stream, or the telemetry
//! event/metric pipeline (only an explicit [`export_to_registry`] call
//! does), so enabling profiling leaves JSONL traces, registry contents and
//! simulation results byte-identical: the `parallel_determinism` gates
//! hold with profiling on or off.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span (phase) name, e.g. `solver.evaluate`.
    pub name: &'static str,
    /// Label pairs attached at creation, e.g. `("shard", "3")`.
    pub labels: Vec<(&'static str, String)>,
    /// Start, microseconds since the profiler epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Small stable id of the recording OS thread (0 = first recorder).
    pub thread: u64,
    /// Unique span id.
    pub id: u64,
    /// Enclosing span at creation time, if any.
    pub parent: Option<u64>,
}

// Enabled state: UNINIT resolves from the environment on first query, so
// binaries honor MET_PROFILE/MET_SPANS without an init call; set_enabled
// overrides either way.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// A per-thread record buffer. Pushes lock the thread's own mutex, which
/// is uncontended except while a concurrent [`drain`]/[`clear`] briefly
/// holds it — recording threads never wait on each other.
struct ThreadBuffer {
    thread: u64,
    records: Mutex<Vec<SpanRecord>>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static BUFFER: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Whether span recording is on. The first query resolves the
/// `MET_PROFILE` / `MET_SPANS` environment knobs (via
/// [`simcore::config::env_config`]); [`set_enabled`] overrides at runtime.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = simcore::config::env_config().profile;
    let want = if on { ON } else { OFF };
    // Racing initializers compute the same value; a concurrent
    // set_enabled wins via the re-load.
    let _ = STATE.compare_exchange(UNINIT, want, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == ON
}

/// Turns span recording on or off for the whole process (overrides the
/// environment knobs).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

fn with_buffer(f: impl FnOnce(&ThreadBuffer)) {
    BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuffer {
                thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
                records: Mutex::new(Vec::new()),
            });
            registry().lock().unwrap().push(buf.clone());
            buf
        });
        f(buf);
    });
}

/// An open span; records itself into the current thread's buffer on drop.
/// Guards from a disabled profiler are inert.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    id: u64,
    parent: Option<u64>,
    /// What `CURRENT` held before this span opened (differs from `parent`
    /// for cross-thread children, whose parent lives on another thread).
    prev_current: Option<u64>,
    start: Instant,
}

impl SpanGuard {
    #[inline]
    fn inert() -> Self {
        SpanGuard { active: None }
    }

    /// This span's id (`None` for an inert guard).
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let end = Instant::now();
        let start_us =
            active.start.checked_duration_since(epoch()).unwrap_or_default().as_micros() as u64;
        let dur_us =
            end.checked_duration_since(active.start).unwrap_or_default().as_micros() as u64;
        CURRENT.with(|c| c.set(active.prev_current));
        with_buffer(|buf| {
            buf.records.lock().unwrap().push(SpanRecord {
                name: active.name,
                labels: active.labels,
                start_us,
                dur_us,
                thread: buf.thread,
                id: active.id,
                parent: active.parent,
            });
        });
    }
}

fn begin(
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    parent_override: Option<Option<u64>>,
) -> SpanGuard {
    // The epoch must exist before the first start timestamp is taken.
    let _ = epoch();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev_current = CURRENT.with(|c| c.get());
    let parent = parent_override.unwrap_or(prev_current);
    CURRENT.with(|c| c.set(Some(id)));
    SpanGuard {
        active: Some(ActiveSpan { name, labels, id, parent, prev_current, start: Instant::now() }),
    }
}

/// Opens an unlabelled span parented on the thread's current span.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    begin(name, Vec::new(), None)
}

/// Opens a labelled span. Callers on hot paths should gate any label
/// formatting on [`enabled`]; this function only allocates when recording.
#[inline]
pub fn span_labeled(name: &'static str, labels: &[(&'static str, &str)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    begin(name, labels.iter().map(|(k, v)| (*k, v.to_string())).collect(), None)
}

/// A capture of the coordinator's open span, for parenting spans recorded
/// on `simcore::par` worker threads. `Copy`, so it moves freely into `Fn`
/// closures.
#[derive(Debug, Clone, Copy)]
pub struct SpanContext {
    parent: Option<u64>,
}

/// Captures the current span (or nothing when profiling is off) for
/// cross-thread parenting.
#[inline]
pub fn current_context() -> SpanContext {
    if !enabled() {
        return SpanContext { parent: None };
    }
    SpanContext { parent: CURRENT.with(|c| c.get()) }
}

impl SpanContext {
    /// Opens a span on the *calling* thread, parented on the captured span.
    #[inline]
    pub fn child(&self, name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard::inert();
        }
        begin(name, Vec::new(), Some(self.parent))
    }

    /// [`SpanContext::child`] with a `shard` label; the label is formatted
    /// only when profiling is on, so the disabled path stays free.
    #[inline]
    pub fn child_shard(&self, name: &'static str, shard: u64) -> SpanGuard {
        if !enabled() {
            return SpanGuard::inert();
        }
        begin(name, vec![("shard", shard.to_string())], Some(self.parent))
    }
}

/// Takes every recorded span out of every thread buffer, ordered by start
/// time (ties by span id).
pub fn drain() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for buf in registry().lock().unwrap().iter() {
        out.append(&mut buf.records.lock().unwrap());
    }
    out.sort_by_key(|r| (r.start_us, r.id));
    out
}

/// Discards every recorded span.
pub fn clear() {
    for buf in registry().lock().unwrap().iter() {
        buf.records.lock().unwrap().clear();
    }
}

// ---- export: Chrome trace-event JSON ----------------------------------

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes `records` as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form): one complete (`"ph": "X"`) event
/// per span, timestamps/durations in microseconds, one `tid` per recording
/// thread. Load the output in `chrome://tracing` or Perfetto.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 * records.len() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape_into(&mut out, r.name);
        out.push_str("\",\"cat\":\"met\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&r.thread.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&r.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&r.dur_us.to_string());
        out.push_str(",\"args\":{\"id\":");
        out.push_str(&r.id.to_string());
        if let Some(p) = r.parent {
            out.push_str(",\"parent\":");
            out.push_str(&p.to_string());
        }
        for (k, v) in &r.labels {
            out.push_str(",\"");
            json_escape_into(&mut out, k);
            out.push_str("\":\"");
            json_escape_into(&mut out, v);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

// ---- export: per-phase aggregation ------------------------------------

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span (phase) name.
    pub name: &'static str,
    /// Number of spans recorded under the name.
    pub count: u64,
    /// Total wall milliseconds (sum of durations; nested spans count
    /// toward every enclosing span's total).
    pub total_ms: f64,
    /// Self wall milliseconds: total minus the time attributed to direct
    /// child spans.
    pub self_ms: f64,
    /// Exact median duration (ms).
    pub p50_ms: f64,
    /// Exact 95th-percentile duration (ms).
    pub p95_ms: f64,
    /// Exact 99th-percentile duration (ms).
    pub p99_ms: f64,
}

fn exact_percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1_000.0
}

/// Reduces records to per-name statistics, ordered by self time
/// (descending; ties by name). Percentiles are exact (computed from the
/// full duration list, not bucket bounds).
pub fn aggregate(records: &[SpanRecord]) -> Vec<SpanStats> {
    use std::collections::BTreeMap;
    // Wall time attributed to direct children, per parent span id.
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        if let Some(p) = r.parent {
            *child_us.entry(p).or_insert(0) += r.dur_us;
        }
    }
    let mut by_name: BTreeMap<&'static str, (u64, u64, u64, Vec<u64>)> = BTreeMap::new();
    for r in records {
        let e = by_name.entry(r.name).or_insert((0, 0, 0, Vec::new()));
        e.0 += 1;
        e.1 += r.dur_us;
        e.2 += r.dur_us.saturating_sub(child_us.get(&r.id).copied().unwrap_or(0));
        e.3.push(r.dur_us);
    }
    let mut out: Vec<SpanStats> = by_name
        .into_iter()
        .map(|(name, (count, total_us, self_us, mut durs))| {
            durs.sort_unstable();
            SpanStats {
                name,
                count,
                total_ms: total_us as f64 / 1_000.0,
                self_ms: self_us as f64 / 1_000.0,
                p50_ms: exact_percentile(&durs, 0.50),
                p95_ms: exact_percentile(&durs, 0.95),
                p99_ms: exact_percentile(&durs, 0.99),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.self_ms.partial_cmp(&a.self_ms).expect("durations are finite").then(a.name.cmp(b.name))
    });
    out
}

/// Mirrors the per-phase aggregate into `telemetry`'s metrics registry:
/// every span duration observes into a `profile_span_ms{span=...}`
/// histogram, self time lands in a `profile_span_self_ms` gauge and span
/// counts in a `profile_spans_total` counter. Only this explicit call
/// moves profiling data into a registry — recording alone never does.
pub fn export_to_registry(telemetry: &crate::Telemetry, records: &[SpanRecord]) {
    for r in records {
        telemetry.observe("profile_span_ms", &[("span", r.name)], r.dur_us as f64 / 1_000.0);
    }
    for s in aggregate(records) {
        telemetry.gauge_set("profile_span_self_ms", &[("span", s.name)], s.self_ms);
        telemetry.counter_add("profile_spans_total", &[("span", s.name)], s.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global profiler state; serialize them.
    pub(super) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _l = lock();
        set_enabled(false);
        clear();
        {
            let g = span("phase.a");
            assert!(g.id().is_none());
            let _inner = span_labeled("phase.b", &[("k", "v")]);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_records_parent_links() {
        let _l = lock();
        set_enabled(true);
        clear();
        {
            let outer = span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = span("inner");
                assert_eq!(
                    drained_parent_of(inner.id().unwrap(), outer_id),
                    None,
                    "inner not recorded until dropped"
                );
            }
            drop(outer);
        }
        set_enabled(false);
        let records = drain();
        assert_eq!(records.len(), 2);
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.dur_us <= outer.dur_us);
    }

    // Helper: nothing is recorded until drop, so this just documents the
    // invariant without draining mid-test.
    fn drained_parent_of(_id: u64, _parent: u64) -> Option<u64> {
        None
    }

    #[test]
    fn aggregate_computes_self_time_and_exact_percentiles() {
        let rec = |name: &'static str, id, parent, start_us, dur_us| SpanRecord {
            name,
            labels: Vec::new(),
            start_us,
            dur_us,
            thread: 0,
            id,
            parent,
        };
        let records = vec![
            rec("tick", 1, None, 0, 10_000),
            rec("solve", 2, Some(1), 1_000, 6_000),
            rec("solve", 3, Some(1), 8_000, 2_000),
            rec("eval", 4, Some(2), 2_000, 1_000),
        ];
        let stats = aggregate(&records);
        let get = |n: &str| stats.iter().find(|s| s.name == n).unwrap().clone();
        let tick = get("tick");
        assert_eq!(tick.count, 1);
        assert!((tick.total_ms - 10.0).abs() < 1e-9);
        // 10 ms minus the two direct solve children (8 ms).
        assert!((tick.self_ms - 2.0).abs() < 1e-9);
        let solve = get("solve");
        assert_eq!(solve.count, 2);
        assert!((solve.total_ms - 8.0).abs() < 1e-9);
        // 8 ms minus the eval child (1 ms).
        assert!((solve.self_ms - 7.0).abs() < 1e-9);
        assert!((solve.p50_ms - 2.0).abs() < 1e-9, "exact median of [2,6] is 2");
        assert!((solve.p99_ms - 6.0).abs() < 1e-9);
        // Ordered by self time: solve (7) > eval follows tick (2) > eval (1).
        assert_eq!(stats[0].name, "solve");
        assert_eq!(stats.last().unwrap().name, "eval");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_required_fields() {
        let records = vec![SpanRecord {
            name: "phase.\"x\"",
            labels: vec![("shard", "3".to_string())],
            start_us: 5,
            dur_us: 7,
            thread: 2,
            id: 9,
            parent: Some(4),
        }];
        let json = chrome_trace(&records);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e["ph"].as_str(), Some("X"));
        assert_eq!(e["ts"].as_u64(), Some(5));
        assert_eq!(e["dur"].as_u64(), Some(7));
        assert_eq!(e["tid"].as_u64(), Some(2));
        assert_eq!(e["pid"].as_u64(), Some(1));
        assert_eq!(e["name"].as_str(), Some("phase.\"x\""));
        assert_eq!(e["args"]["shard"].as_str(), Some("3"));
        assert_eq!(e["args"]["parent"].as_u64(), Some(4));
    }

    #[test]
    fn export_to_registry_lands_histograms_and_counters() {
        let records = vec![
            SpanRecord {
                name: "phase.a",
                labels: Vec::new(),
                start_us: 0,
                dur_us: 2_000,
                thread: 0,
                id: 1,
                parent: None,
            },
            SpanRecord {
                name: "phase.a",
                labels: Vec::new(),
                start_us: 3_000,
                dur_us: 4_000,
                thread: 0,
                id: 2,
                parent: None,
            },
        ];
        let t = crate::Telemetry::new(crate::Verbosity::Off);
        export_to_registry(&t, &records);
        assert_eq!(t.counter_value("profile_spans_total", &[("span", "phase.a")]), 2);
        let h = t.histogram_summary("profile_span_ms", &[("span", "phase.a")]).unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 6.0).abs() < 1e-9);
        assert_eq!(t.gauge_value("profile_span_self_ms", &[("span", "phase.a")]), Some(6.0));
    }
}
