//! Event sinks: an in-memory ring buffer and a JSONL file exporter.

use crate::event::Event;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Keeps the most recent `capacity` events in memory. Used by tests, the
/// report layer, and any caller that wants to inspect a trace without
/// touching the filesystem.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<Event>,
    /// Events discarded because the buffer was full.
    pub dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink { capacity: capacity.max(1), buf: VecDeque::new(), dropped: 0 }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }
}

/// Streams events to a file, one JSON object per line. Write failures are
/// counted, not propagated — tracing must never alter simulation
/// behaviour.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    /// Events that failed to serialize or write.
    pub write_errors: u64,
}

impl JsonlSink {
    /// Creates (truncates) `path` for writing.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink { out: BufWriter::new(File::create(path)?), write_errors: 0 })
    }

    /// Appends one event line.
    pub fn write(&mut self, event: &Event) {
        let line = event.to_json_line();
        if writeln!(self.out, "{line}").is_err() {
            self.write_errors += 1;
        }
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;

    fn event(seq: u64) -> Event {
        Event {
            time_ms: seq * 10,
            seq,
            data: TelemetryEvent::ReconfigCompleted { duration_ms: seq },
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBufferSink::new(3);
        for seq in 0..5 {
            ring.push(event(seq));
        }
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.dropped, 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("telemetry-sink-test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for seq in 0..3 {
                sink.write(&event(seq));
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::event::parse_trace(&text).unwrap();
        assert_eq!(parsed, (0..3).map(event).collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }
}
