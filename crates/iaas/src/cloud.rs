//! VM lifecycle: flavors, quota, boot, terminate.

use cluster::admin::{AdminError, ClusterSnapshot, ElasticCluster};
use cluster::{ServerId, SimCluster};
use hstore::StoreConfig;
use simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An instance flavor (the paper's experiments use 3 GB-RAM VMs, §6.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flavor {
    /// Flavor name (e.g. "m1.medium").
    pub name: String,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// RAM in MiB.
    pub ram_mb: u64,
    /// Root disk in GiB.
    pub disk_gb: u64,
}

impl Flavor {
    /// The 3 GB flavor used throughout the paper's evaluation.
    pub fn paper_medium() -> Self {
        Flavor { name: "m1.medium".into(), vcpus: 2, ram_mb: 3 * 1024, disk_gb: 40 }
    }

    /// The Java heap a RegionServer on this flavor gets (all of RAM in the
    /// paper's configuration).
    pub fn heap_bytes(&self) -> u64 {
        self.ram_mb * 1024 * 1024
    }
}

/// Tenant quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quota {
    /// Maximum concurrently existing (non-deleted) instances.
    pub max_instances: usize,
}

/// Identifies a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u64);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// VM lifecycle state (OpenStack naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Being provisioned.
    Building,
    /// Running.
    Active,
    /// Terminated.
    Deleted,
}

/// Bookkeeping for one VM.
#[derive(Debug, Clone)]
pub struct VmRecord {
    /// VM identity.
    pub id: VmId,
    /// Flavor it was booted with.
    pub flavor: Flavor,
    /// The RegionServer running on it.
    pub server: ServerId,
    /// Boot request time.
    pub requested_at: SimTime,
}

/// IaaS-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// The quota would be exceeded.
    QuotaExceeded {
        /// Configured limit.
        limit: usize,
    },
    /// Unknown VM.
    UnknownVm(VmId),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::QuotaExceeded { limit } => write!(f, "instance quota ({limit}) exceeded"),
            CloudError::UnknownVm(id) => write!(f, "unknown VM {id}"),
        }
    }
}

impl std::error::Error for CloudError {}

/// A simulated cluster deployed on a simulated cloud.
pub struct CloudCluster {
    inner: SimCluster,
    flavor: Flavor,
    quota: Quota,
    boot_delay: SimDuration,
    vms: BTreeMap<VmId, VmRecord>,
    server_to_vm: BTreeMap<ServerId, VmId>,
    deleted: BTreeSet<VmId>,
    next_vm: u64,
    telemetry: telemetry::Telemetry,
}

impl CloudCluster {
    /// Deploys on the cloud: every subsequent provision goes through VM
    /// boot with `boot_delay`.
    pub fn new(
        mut inner: SimCluster,
        flavor: Flavor,
        quota: Quota,
        boot_delay: SimDuration,
    ) -> Self {
        inner.set_provision_delay(boot_delay);
        CloudCluster {
            inner,
            flavor,
            quota,
            boot_delay,
            vms: BTreeMap::new(),
            server_to_vm: BTreeMap::new(),
            deleted: BTreeSet::new(),
            next_vm: 1,
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// Routes IaaS-level telemetry (VM boots, deletions, quota rejections)
    /// through `telemetry`; the wrapped simulated cluster reports through
    /// the same handle.
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.inner.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Attaches a fault injector to the wrapped cluster: scripted VM
    /// provision failures and slow boots fire inside
    /// [`ElasticCluster::provision_server`], alongside the substrate-level
    /// crash and call faults.
    pub fn set_fault_injector(&mut self, faults: simcore::FaultInjector) {
        self.inner.set_fault_injector(faults);
    }

    /// Boots the initial fleet synchronously (cluster bring-up before the
    /// experiment starts). Returns the server ids.
    pub fn boot_initial_fleet(
        &mut self,
        count: usize,
        config: StoreConfig,
    ) -> Result<Vec<ServerId>, CloudError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            self.check_quota()?;
            let server = self.inner.add_server_immediate(config.clone());
            out.push(server);
            self.record_vm(server);
        }
        Ok(out)
    }

    fn check_quota(&self) -> Result<(), CloudError> {
        let active = self.vms.len() - self.deleted.len();
        if active >= self.quota.max_instances {
            self.telemetry.counter_add("iaas_quota_rejections_total", &[], 1);
            return Err(CloudError::QuotaExceeded { limit: self.quota.max_instances });
        }
        Ok(())
    }

    fn record_vm(&mut self, server: ServerId) -> VmId {
        let id = VmId(self.next_vm);
        self.next_vm += 1;
        self.vms.insert(
            id,
            VmRecord { id, flavor: self.flavor.clone(), server, requested_at: self.inner.time() },
        );
        self.server_to_vm.insert(server, id);
        self.telemetry.counter_add("iaas_vms_booted_total", &[], 1);
        self.telemetry.gauge_set("iaas_active_vms", &[], self.active_vm_count() as f64);
        id
    }

    /// Advances the simulation by `n` ticks.
    pub fn run_ticks(&mut self, n: usize) {
        self.inner.run_ticks(n);
    }

    /// The underlying simulated cluster.
    pub fn inner(&self) -> &SimCluster {
        &self.inner
    }

    /// Mutable access to the underlying simulated cluster.
    pub fn inner_mut(&mut self) -> &mut SimCluster {
        &mut self.inner
    }

    /// The VM running a given server, if any.
    pub fn vm_of(&self, server: ServerId) -> Option<&VmRecord> {
        self.server_to_vm.get(&server).and_then(|id| self.vms.get(id))
    }

    /// Number of non-deleted VMs.
    pub fn active_vm_count(&self) -> usize {
        self.vms.len() - self.deleted.len()
    }

    /// Configured boot delay.
    pub fn boot_delay(&self) -> SimDuration {
        self.boot_delay
    }
}

impl ElasticCluster for CloudCluster {
    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn snapshot(&self) -> ClusterSnapshot {
        self.inner.snapshot()
    }

    fn move_partition(
        &mut self,
        partition: cluster::PartitionId,
        to: ServerId,
    ) -> Result<(), AdminError> {
        self.inner.move_partition(partition, to)
    }

    fn restart_server(&mut self, server: ServerId, config: StoreConfig) -> Result<(), AdminError> {
        self.inner.restart_server(server, config)
    }

    fn major_compact(&mut self, partition: cluster::PartitionId) -> Result<(), AdminError> {
        self.inner.major_compact(partition)
    }

    fn provision_server(&mut self, config: StoreConfig) -> Result<ServerId, AdminError> {
        self.check_quota().map_err(|e| AdminError::ProvisioningFailed(e.to_string()))?;
        let server = self.inner.provision_server(config)?;
        self.record_vm(server);
        Ok(server)
    }

    fn decommission_server(&mut self, server: ServerId) -> Result<(), AdminError> {
        self.inner.decommission_server(server)?;
        if let Some(vm) = self.server_to_vm.remove(&server) {
            self.deleted.insert(vm);
            self.telemetry.counter_add("iaas_vms_deleted_total", &[], 1);
            self.telemetry.gauge_set("iaas_active_vms", &[], self.active_vm_count() as f64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::admin::{AdminError, ElasticCluster};
    use cluster::{CostParams, SimCluster};

    fn cloud(quota: usize) -> CloudCluster {
        let sim = SimCluster::new(CostParams::default(), 1);
        CloudCluster::new(
            sim,
            Flavor::paper_medium(),
            Quota { max_instances: quota },
            SimDuration::from_secs(30),
        )
    }

    #[test]
    fn initial_fleet_counts_against_quota() {
        let mut c = cloud(3);
        let servers = c.boot_initial_fleet(3, StoreConfig::default_homogeneous()).unwrap();
        assert_eq!(servers.len(), 3);
        assert_eq!(c.active_vm_count(), 3);
        let err = c.provision_server(StoreConfig::default_homogeneous());
        assert!(matches!(err, Err(AdminError::ProvisioningFailed(_))));
    }

    #[test]
    fn boot_initial_fleet_rejects_over_quota() {
        let mut c = cloud(2);
        let err = c.boot_initial_fleet(3, StoreConfig::default_homogeneous());
        assert!(matches!(err, Err(CloudError::QuotaExceeded { limit: 2 })));
    }

    #[test]
    fn decommission_frees_quota() {
        let mut c = cloud(2);
        let servers = c.boot_initial_fleet(2, StoreConfig::default_homogeneous()).unwrap();
        c.decommission_server(servers[1]).unwrap();
        assert_eq!(c.active_vm_count(), 1);
        // The freed slot is usable again.
        let id = c.provision_server(StoreConfig::default_homogeneous()).unwrap();
        assert!(c.vm_of(id).is_some());
        assert_eq!(c.active_vm_count(), 2);
    }

    #[test]
    fn injected_provision_failure_does_not_consume_quota_or_vm_ids() {
        use simcore::fault::{FaultSpec, ScheduledFault};
        use simcore::{FaultPlan, SimTime};
        let mut c = cloud(4);
        c.boot_initial_fleet(1, StoreConfig::default_homogeneous()).unwrap();
        let plan = FaultPlan::new(vec![ScheduledFault {
            at: SimTime::ZERO,
            spec: FaultSpec::ProvisionFail,
        }]);
        c.set_fault_injector(plan.injector());
        let err = c.provision_server(StoreConfig::default_homogeneous());
        assert!(matches!(err, Err(AdminError::ProvisioningFailed(_))), "{err:?}");
        assert_eq!(c.active_vm_count(), 1, "failed boot must not leak a VM record");
        // The fault is consumed; the retry boots normally.
        let id = c.provision_server(StoreConfig::default_homogeneous()).unwrap();
        assert!(c.vm_of(id).is_some());
        assert_eq!(c.active_vm_count(), 2);
    }

    #[test]
    fn vm_records_track_servers_and_flavor() {
        let mut c = cloud(4);
        let servers = c.boot_initial_fleet(1, StoreConfig::default_homogeneous()).unwrap();
        let vm = c.vm_of(servers[0]).expect("vm recorded");
        assert_eq!(vm.server, servers[0]);
        assert_eq!(vm.flavor.name, "m1.medium");
        assert_eq!(vm.flavor.heap_bytes(), 3 * 1024 * 1024 * 1024);
        assert_eq!(c.boot_delay(), SimDuration::from_secs(30));
    }
}
