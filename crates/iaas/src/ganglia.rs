//! Ganglia-style system-metrics reporting.
//!
//! The paper's monitor "gathers data about CPU usage, memory usage and I/O
//! wait of the various nodes through Ganglia" (§5). This module exposes the
//! same three metrics per VM, derived from the cluster snapshot — the
//! system-metrics half of MeT's monitoring (the NoSQL half comes from the
//! JMX-equivalent partition counters).

use cluster::admin::{ClusterSnapshot, ServerHealth};
use cluster::ServerId;
use serde::{Deserialize, Serialize};
use simcore::{FaultInjector, SimDuration, SimTime};

/// One node's system metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// I/O wait in `[0, 1]`.
    pub io_wait: f64,
    /// Memory utilization in `[0, 1]`.
    pub mem_util: f64,
}

/// A metrics report across the fleet at one instant.
#[derive(Debug, Clone, Default)]
pub struct GangliaReport {
    entries: Vec<(ServerId, SystemMetrics)>,
}

impl GangliaReport {
    /// Builds a report from a cluster snapshot, covering online servers
    /// only (a booting or restarting node reports nothing, as a real
    /// Ganglia deployment would miss it).
    pub fn from_snapshot(snapshot: &ClusterSnapshot) -> Self {
        let entries = snapshot
            .servers
            .iter()
            .filter(|s| s.health == ServerHealth::Online)
            .map(|s| {
                (
                    s.server,
                    SystemMetrics {
                        cpu_util: s.cpu_util,
                        io_wait: s.io_wait,
                        mem_util: s.mem_util,
                    },
                )
            })
            .collect();
        GangliaReport { entries }
    }

    /// Metrics for one node, if it reported.
    pub fn node(&self, id: ServerId) -> Option<SystemMetrics> {
        self.entries.iter().find(|(s, _)| *s == id).map(|(_, m)| *m)
    }

    /// All reporting nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (ServerId, SystemMetrics)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of reporting nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nobody reported.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publishes the report as per-server gauges (`ganglia_cpu_util`,
    /// `ganglia_io_wait`, `ganglia_mem_util`) plus the reporting-node count,
    /// mirroring what a Ganglia gmetad round would push to a metrics store.
    pub fn publish(&self, telemetry: &telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        for (sid, m) in &self.entries {
            let label = sid.0.to_string();
            let labels = [("server", label.as_str())];
            telemetry.gauge_set("ganglia_cpu_util", &labels, m.cpu_util);
            telemetry.gauge_set("ganglia_io_wait", &labels, m.io_wait);
            telemetry.gauge_set("ganglia_mem_util", &labels, m.mem_util);
        }
        telemetry.gauge_set("ganglia_nodes_reporting", &[], self.entries.len() as f64);
    }

    /// Fleet-average CPU utilization (0 when empty).
    pub fn avg_cpu(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.entries.iter().map(|(_, m)| m.cpu_util).sum::<f64>() / self.entries.len() as f64
        }
    }
}

/// A [`GangliaReport`] tagged with how fresh it is.
///
/// `age` is zero for a report built from the current snapshot; when a
/// round is dropped the collector serves the last good report and the age
/// grows, so consumers can degrade instead of mistaking stale data for
/// current.
#[derive(Debug, Clone, Default)]
pub struct SampledReport {
    /// The report (possibly the last good one, when this round dropped).
    pub report: GangliaReport,
    /// Time since the data in `report` was actually collected.
    pub age: SimDuration,
    /// Monitoring rounds dropped since the last good collection.
    pub dropped_rounds: u64,
}

impl SampledReport {
    /// True when this round's samples were actually collected (not
    /// served from the stale cache).
    pub fn is_fresh(&self) -> bool {
        self.dropped_rounds == 0
    }
}

/// Collects Ganglia rounds, surviving dropped or delayed sample
/// deliveries: when a scripted [`simcore::FaultSpec::MetricsDrop`] fault
/// fires, the round returns the last-known-good report tagged with its
/// age instead of fresh data — what a gmetad poll returns when gmond
/// packets were lost.
#[derive(Debug, Default)]
pub struct GangliaCollector {
    faults: FaultInjector,
    last_good: Option<(SimTime, GangliaReport)>,
    dropped_total: u64,
    dropped_streak: u64,
}

impl GangliaCollector {
    /// A collector that never drops a round.
    pub fn new() -> Self {
        GangliaCollector::default()
    }

    /// A collector whose rounds can be dropped by scripted faults.
    pub fn with_faults(faults: FaultInjector) -> Self {
        GangliaCollector { faults, ..GangliaCollector::default() }
    }

    /// Runs one collection round against `snapshot`.
    pub fn collect(&mut self, snapshot: &ClusterSnapshot) -> SampledReport {
        if self.faults.take_metrics_drop(snapshot.at) {
            self.dropped_total += 1;
            self.dropped_streak += 1;
            let (at, report) =
                self.last_good.clone().unwrap_or((snapshot.at, GangliaReport::default()));
            return SampledReport {
                report,
                age: snapshot.at.since(at),
                dropped_rounds: self.dropped_streak,
            };
        }
        let report = GangliaReport::from_snapshot(snapshot);
        self.last_good = Some((snapshot.at, report.clone()));
        self.dropped_streak = 0;
        SampledReport { report, age: SimDuration::ZERO, dropped_rounds: 0 }
    }

    /// Rounds dropped over the collector's lifetime.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{CostParams, ElasticCluster, PartitionSpec, SimCluster};
    use hstore::StoreConfig;

    #[test]
    fn report_covers_online_nodes_only() {
        let mut sim = SimCluster::new(CostParams::default(), 1);
        let a = sim.add_server_immediate(StoreConfig::default_homogeneous());
        let b = sim.add_server_immediate(StoreConfig::default_homogeneous());
        let p = sim.create_partition(PartitionSpec {
            table: "t".into(),
            size_bytes: 1e9,
            record_bytes: 1_000.0,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
        });
        sim.assign_partition(p, a).unwrap();
        sim.restart_server(b, StoreConfig::default_homogeneous()).unwrap();
        sim.run_ticks(2);
        let report = GangliaReport::from_snapshot(&sim.snapshot());
        assert!(report.node(a).is_some());
        assert!(report.node(b).is_none(), "restarting node must not report");
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn dropped_round_serves_stale_report_with_age() {
        use simcore::fault::{FaultSpec, ScheduledFault};
        use simcore::{FaultPlan, SimTime};

        let mut sim = SimCluster::new(CostParams::default(), 2);
        let a = sim.add_server_immediate(StoreConfig::default_homogeneous());
        let p = sim.create_partition(PartitionSpec {
            table: "t".into(),
            size_bytes: 1e9,
            record_bytes: 1_000.0,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
        });
        sim.assign_partition(p, a).unwrap();

        let plan = FaultPlan::new(vec![
            ScheduledFault { at: SimTime::from_secs(3), spec: FaultSpec::MetricsDrop },
            ScheduledFault { at: SimTime::from_secs(4), spec: FaultSpec::MetricsDrop },
        ]);
        let mut collector = GangliaCollector::with_faults(plan.injector());

        sim.run_ticks(2);
        let fresh = collector.collect(&sim.snapshot());
        assert!(fresh.is_fresh());
        assert_eq!(fresh.age, SimDuration::ZERO);
        assert_eq!(fresh.report.len(), 1);

        // Two consecutive rounds drop: the stale report is served, age grows.
        sim.run_ticks(1);
        let stale = collector.collect(&sim.snapshot());
        assert!(!stale.is_fresh());
        assert_eq!(stale.age, SimDuration::from_secs(1));
        assert_eq!(stale.dropped_rounds, 1);
        assert_eq!(stale.report.node(a), fresh.report.node(a), "served from cache");

        sim.run_ticks(1);
        let staler = collector.collect(&sim.snapshot());
        assert_eq!(staler.age, SimDuration::from_secs(2));
        assert_eq!(staler.dropped_rounds, 2);
        assert_eq!(collector.dropped_total(), 2);

        // The script is exhausted: the next round is fresh again.
        sim.run_ticks(1);
        let recovered = collector.collect(&sim.snapshot());
        assert!(recovered.is_fresh());
        assert_eq!(recovered.age, SimDuration::ZERO);
    }
}
