//! Ganglia-style system-metrics reporting.
//!
//! The paper's monitor "gathers data about CPU usage, memory usage and I/O
//! wait of the various nodes through Ganglia" (§5). This module exposes the
//! same three metrics per VM, derived from the cluster snapshot — the
//! system-metrics half of MeT's monitoring (the NoSQL half comes from the
//! JMX-equivalent partition counters).

use cluster::admin::{ClusterSnapshot, ServerHealth};
use cluster::ServerId;
use serde::{Deserialize, Serialize};

/// One node's system metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// I/O wait in `[0, 1]`.
    pub io_wait: f64,
    /// Memory utilization in `[0, 1]`.
    pub mem_util: f64,
}

/// A metrics report across the fleet at one instant.
#[derive(Debug, Clone, Default)]
pub struct GangliaReport {
    entries: Vec<(ServerId, SystemMetrics)>,
}

impl GangliaReport {
    /// Builds a report from a cluster snapshot, covering online servers
    /// only (a booting or restarting node reports nothing, as a real
    /// Ganglia deployment would miss it).
    pub fn from_snapshot(snapshot: &ClusterSnapshot) -> Self {
        let entries = snapshot
            .servers
            .iter()
            .filter(|s| s.health == ServerHealth::Online)
            .map(|s| {
                (
                    s.server,
                    SystemMetrics {
                        cpu_util: s.cpu_util,
                        io_wait: s.io_wait,
                        mem_util: s.mem_util,
                    },
                )
            })
            .collect();
        GangliaReport { entries }
    }

    /// Metrics for one node, if it reported.
    pub fn node(&self, id: ServerId) -> Option<SystemMetrics> {
        self.entries.iter().find(|(s, _)| *s == id).map(|(_, m)| *m)
    }

    /// All reporting nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (ServerId, SystemMetrics)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of reporting nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nobody reported.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publishes the report as per-server gauges (`ganglia_cpu_util`,
    /// `ganglia_io_wait`, `ganglia_mem_util`) plus the reporting-node count,
    /// mirroring what a Ganglia gmetad round would push to a metrics store.
    pub fn publish(&self, telemetry: &telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        for (sid, m) in &self.entries {
            let label = sid.0.to_string();
            let labels = [("server", label.as_str())];
            telemetry.gauge_set("ganglia_cpu_util", &labels, m.cpu_util);
            telemetry.gauge_set("ganglia_io_wait", &labels, m.io_wait);
            telemetry.gauge_set("ganglia_mem_util", &labels, m.mem_util);
        }
        telemetry.gauge_set("ganglia_nodes_reporting", &[], self.entries.len() as f64);
    }

    /// Fleet-average CPU utilization (0 when empty).
    pub fn avg_cpu(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.entries.iter().map(|(_, m)| m.cpu_util).sum::<f64>() / self.entries.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{CostParams, ElasticCluster, PartitionSpec, SimCluster};
    use hstore::StoreConfig;

    #[test]
    fn report_covers_online_nodes_only() {
        let mut sim = SimCluster::new(CostParams::default(), 1);
        let a = sim.add_server_immediate(StoreConfig::default_homogeneous());
        let b = sim.add_server_immediate(StoreConfig::default_homogeneous());
        let p = sim.create_partition(PartitionSpec {
            table: "t".into(),
            size_bytes: 1e9,
            record_bytes: 1_000.0,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
        });
        sim.assign_partition(p, a).unwrap();
        sim.restart_server(b, StoreConfig::default_homogeneous()).unwrap();
        sim.run_ticks(2);
        let report = GangliaReport::from_snapshot(&sim.snapshot());
        assert!(report.node(a).is_some());
        assert!(report.node(b).is_none(), "restarting node must not report");
        assert_eq!(report.len(), 1);
    }
}
