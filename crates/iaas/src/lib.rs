#![warn(missing_docs)]

//! An OpenStack-like IaaS simulation.
//!
//! MeT's prototype drives OpenStack to start and stop the virtual machines
//! that host RegionServers (§5 of the paper), and reads system metrics
//! (CPU, memory, I/O wait) through Ganglia (§4.1). This crate wraps a
//! [`cluster::SimCluster`] with exactly that surface: named flavors, an
//! instance quota, asynchronous boot with a provisioning delay, VM
//! termination, and a Ganglia-style system-metrics view.
//!
//! The wrapper itself implements [`cluster::ElasticCluster`], so a control
//! plane is oblivious to whether it manages the database directly (zero
//! boot delay) or through the cloud (§4.3: "if we are using a IaaS system
//! it means first starting a virtual machine, and only after the NoSQL
//! database").

pub mod cloud;
pub mod ganglia;

pub use cloud::{CloudCluster, CloudError, Flavor, Quota, VmId, VmRecord, VmState};
pub use ganglia::{GangliaReport, SystemMetrics};
