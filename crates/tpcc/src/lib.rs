#![warn(missing_docs)]

//! A PyTPCC-style TPC-C implementation over the MeT reproduction's store.
//!
//! §6.3 of the paper evaluates MeT's versatility with PyTPCC, an HBase port
//! of TPC-C offering record-level atomicity only. This crate mirrors it:
//!
//! * [`schema`] — the nine tables with warehouse-prefixed composite keys.
//! * [`loader`] — database population (30 warehouses ≈ 15 GB at paper
//!   scale; a tiny scale for tests).
//! * [`txn`] — the five transactions with the standard 45/43/4/4/4 mix and
//!   the paper's 8 % read-only / 92 % update profile, executed for real
//!   against the functional cluster.
//! * [`demand`] — the simulation deployment used by the Table 2
//!   experiment, with per-kind partition weights derived from the
//!   transactions' storage footprints.

pub mod demand;
pub mod loader;
pub mod schema;
pub mod txn;

pub use demand::{deploy, tpmc_from_txn_rate, TpccDeployment};
pub use schema::{Table, TpccScale};
pub use txn::{TxnCounts, TxnExecutor, TxnKind};
