//! The five TPC-C transactions, with HBase semantics.
//!
//! As the paper notes (§6.3), the PyTPCC HBase driver offers only
//! record-level atomicity, not full ACID — each transaction is a sequence
//! of independent key-value operations. The read/write/scan footprint of
//! each transaction matches the standard profile; that footprint is what
//! both MeT's classifier and the performance model observe.

use crate::schema::{keys, Table, TpccScale};
use bytes::Bytes;
use cluster::functional::{FResult, FunctionalCluster};
use hstore::Qualifier;
use simcore::SimRng;

fn q(name: &str) -> Qualifier {
    Qualifier::from(name)
}

fn parse_num(v: &Bytes) -> u64 {
    std::str::from_utf8(v).ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn num(v: u64) -> Bytes {
    Bytes::from(v.to_string().into_bytes())
}

/// The five transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Enter a new order (45 %). The tpmC metric counts these.
    NewOrder,
    /// Record a payment (43 %).
    Payment,
    /// Query an order's status (4 %, read-only).
    OrderStatus,
    /// Deliver pending orders (4 %).
    Delivery,
    /// Check stock levels (4 %, read-only).
    StockLevel,
}

impl TxnKind {
    /// The standard mix weights.
    pub fn mix() -> [(TxnKind, f64); 5] {
        [
            (TxnKind::NewOrder, 0.45),
            (TxnKind::Payment, 0.43),
            (TxnKind::OrderStatus, 0.04),
            (TxnKind::Delivery, 0.04),
            (TxnKind::StockLevel, 0.04),
        ]
    }

    /// Draws a transaction kind from the standard mix.
    pub fn draw(rng: &mut SimRng) -> TxnKind {
        let r = rng.next_f64();
        let mut acc = 0.0;
        for (kind, w) in TxnKind::mix() {
            acc += w;
            if r < acc {
                return kind;
            }
        }
        TxnKind::StockLevel
    }
}

/// Per-kind execution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnCounts {
    /// NewOrder transactions completed.
    pub new_order: u64,
    /// Payment transactions completed.
    pub payment: u64,
    /// OrderStatus transactions completed.
    pub order_status: u64,
    /// Delivery transactions completed.
    pub delivery: u64,
    /// StockLevel transactions completed.
    pub stock_level: u64,
}

impl TxnCounts {
    /// Total transactions.
    pub fn total(&self) -> u64 {
        self.new_order + self.payment + self.order_status + self.delivery + self.stock_level
    }
}

/// Executes transactions against the functional cluster.
pub struct TxnExecutor {
    scale: TpccScale,
    rng: SimRng,
    history_seq: u64,
    counts: TxnCounts,
}

impl TxnExecutor {
    /// Creates an executor over a loaded database.
    pub fn new(scale: TpccScale, seed: u64) -> Self {
        TxnExecutor {
            scale,
            rng: SimRng::new(seed).derive("tpcc-txn"),
            history_seq: 0,
            counts: TxnCounts::default(),
        }
    }

    /// Counts so far.
    pub fn counts(&self) -> TxnCounts {
        self.counts
    }

    fn pick_warehouse(&mut self) -> u32 {
        self.rng.next_range(1, self.scale.warehouses as u64) as u32
    }

    fn pick_district(&mut self) -> u32 {
        self.rng.next_range(1, self.scale.districts_per_warehouse as u64) as u32
    }

    fn pick_customer(&mut self) -> u32 {
        self.rng.next_range(1, self.scale.customers_per_district as u64) as u32
    }

    fn pick_item(&mut self) -> u32 {
        self.rng.next_below(self.scale.items as u64) as u32
    }

    /// Runs `n` transactions from the standard mix.
    pub fn run(&mut self, cluster: &mut FunctionalCluster, n: u64) -> FResult<TxnCounts> {
        for _ in 0..n {
            match TxnKind::draw(&mut self.rng) {
                TxnKind::NewOrder => self.new_order(cluster)?,
                TxnKind::Payment => self.payment(cluster)?,
                TxnKind::OrderStatus => self.order_status(cluster)?,
                TxnKind::Delivery => self.delivery(cluster)?,
                TxnKind::StockLevel => self.stock_level(cluster)?,
            }
        }
        Ok(self.counts)
    }

    /// NewOrder: ~23 reads, ~23 writes.
    pub fn new_order(&mut self, cluster: &mut FunctionalCluster) -> FResult<()> {
        let fam = Table::family();
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();

        let _tax = cluster.get(Table::Warehouse.name(), &fam, &keys::warehouse(w), &q("W_TAX"))?;
        // The district cursor advances atomically (HBase increment), the
        // one record-level atomic step TPC-C's NewOrder really needs.
        let drow = keys::district(w, d);
        let next = cluster.increment(Table::District.name(), &fam, drow, q("D_NEXT_O_ID"), 1)?;
        let o = (next - 1).max(1) as u32;
        let _cust =
            cluster.get(Table::Customer.name(), &fam, &keys::customer(w, d, c), &q("C_LAST"))?;

        let orow = keys::order(w, d, o);
        cluster.put(Table::Orders.name(), &fam, orow.clone(), q("O_C_ID"), num(c as u64))?;
        let lines = self.rng.next_range(5, 15) as u32;
        cluster.put(Table::Orders.name(), &fam, orow, q("O_OL_CNT"), num(lines as u64))?;
        cluster.put(
            Table::NewOrder.name(),
            &fam,
            keys::new_order(w, d, o),
            q("NO_O_ID"),
            num(o as u64),
        )?;

        for l in 1..=lines {
            let i = self.pick_item();
            let _price = cluster.get(Table::Item.name(), &fam, &keys::item(i), &q("I_PRICE"))?;
            let srow = keys::stock(w, i);
            let qty = parse_num(
                &cluster
                    .get(Table::Stock.name(), &fam, &srow, &q("S_QUANTITY"))?
                    .unwrap_or_default(),
            );
            let taken = self.rng.next_range(1, 10);
            let new_qty = if qty >= taken + 10 { qty - taken } else { qty + 91 - taken };
            cluster.put(Table::Stock.name(), &fam, srow, q("S_QUANTITY"), num(new_qty))?;
            let lrow = keys::order_line(w, d, o, l);
            cluster.put(
                Table::OrderLine.name(),
                &fam,
                lrow.clone(),
                q("OL_I_ID"),
                num(i as u64),
            )?;
            cluster.put(Table::OrderLine.name(), &fam, lrow, q("OL_AMOUNT"), num(taken * 100))?;
        }
        self.counts.new_order += 1;
        Ok(())
    }

    /// Payment: ~3 reads, ~4 writes.
    pub fn payment(&mut self, cluster: &mut FunctionalCluster) -> FResult<()> {
        let fam = Table::family();
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let amount = self.rng.next_range(100, 500_000);

        let wrow = keys::warehouse(w);
        let ytd = parse_num(
            &cluster.get(Table::Warehouse.name(), &fam, &wrow, &q("W_YTD"))?.unwrap_or_default(),
        );
        cluster.put(Table::Warehouse.name(), &fam, wrow, q("W_YTD"), num(ytd + amount))?;

        let drow = keys::district(w, d);
        let dytd = parse_num(
            &cluster.get(Table::District.name(), &fam, &drow, &q("D_YTD"))?.unwrap_or_default(),
        );
        cluster.put(Table::District.name(), &fam, drow, q("D_YTD"), num(dytd + amount))?;

        let crow = keys::customer(w, d, c);
        let bal = parse_num(
            &cluster.get(Table::Customer.name(), &fam, &crow, &q("C_BALANCE"))?.unwrap_or_default(),
        );
        cluster.put(Table::Customer.name(), &fam, crow, q("C_BALANCE"), num(bal + amount))?;

        self.history_seq += 1;
        cluster.put(
            Table::History.name(),
            &fam,
            keys::history(w, d, c, self.history_seq),
            q("H_AMOUNT"),
            num(amount),
        )?;
        self.counts.payment += 1;
        Ok(())
    }

    /// OrderStatus (read-only): customer, last order, its lines.
    pub fn order_status(&mut self, cluster: &mut FunctionalCluster) -> FResult<()> {
        let fam = Table::family();
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let c = self.pick_customer();
        let _cust =
            cluster.get(Table::Customer.name(), &fam, &keys::customer(w, d, c), &q("C_BALANCE"))?;
        // Scan the district's most recent orders and their lines.
        let _orders = cluster.scan(Table::Orders.name(), &fam, &keys::order(w, d, 1), 1)?;
        let _lines =
            cluster.scan(Table::OrderLine.name(), &fam, &keys::order_line(w, d, 1, 1), 15)?;
        self.counts.order_status += 1;
        Ok(())
    }

    /// Delivery: pops the oldest NEW-ORDER of each district.
    pub fn delivery(&mut self, cluster: &mut FunctionalCluster) -> FResult<()> {
        let fam = Table::family();
        let w = self.pick_warehouse();
        for d in 1..=self.scale.districts_per_warehouse {
            let start = keys::new_order(w, d, 0);
            let pending = cluster.scan(Table::NewOrder.name(), &fam, &start, 1)?;
            let Some((row, cells)) = pending.into_iter().next() else { continue };
            // Only rows of this district qualify (scan may cross into the
            // next district's range).
            let prefix = format!("{w:05}.{d:02}.");
            if !row.to_string().starts_with(&prefix) {
                continue;
            }
            let o = cells
                .iter()
                .find(|(q_, _)| q_ == &q("NO_O_ID"))
                .map(|(_, v)| parse_num(v))
                .unwrap_or(0) as u32;
            cluster.delete(Table::NewOrder.name(), &fam, row, q("NO_O_ID"))?;
            let orow = keys::order(w, d, o);
            cluster.put(
                Table::Orders.name(),
                &fam,
                orow,
                q("O_CARRIER_ID"),
                num(self.rng.next_range(1, 10)),
            )?;
            // Credit the customer with the order total.
            let lines =
                cluster.scan(Table::OrderLine.name(), &fam, &keys::order_line(w, d, o, 1), 15)?;
            let total: u64 = lines
                .iter()
                .flat_map(|(_, cs)| cs.iter())
                .filter(|(q_, _)| q_ == &q("OL_AMOUNT"))
                .map(|(_, v)| parse_num(v))
                .sum();
            let c = self.pick_customer();
            let crow = keys::customer(w, d, c);
            let bal = parse_num(
                &cluster
                    .get(Table::Customer.name(), &fam, &crow, &q("C_BALANCE"))?
                    .unwrap_or_default(),
            );
            cluster.put(Table::Customer.name(), &fam, crow, q("C_BALANCE"), num(bal + total))?;
        }
        self.counts.delivery += 1;
        Ok(())
    }

    /// StockLevel (read-only): district cursor, recent order lines, stock.
    pub fn stock_level(&mut self, cluster: &mut FunctionalCluster) -> FResult<()> {
        let fam = Table::family();
        let w = self.pick_warehouse();
        let d = self.pick_district();
        let next = parse_num(
            &cluster
                .get(Table::District.name(), &fam, &keys::district(w, d), &q("D_NEXT_O_ID"))?
                .unwrap_or_default(),
        ) as u32;
        let from = next.saturating_sub(20).max(1);
        let lines =
            cluster.scan(Table::OrderLine.name(), &fam, &keys::order_line(w, d, from, 1), 40)?;
        let mut checked = 0;
        for (_, cells) in lines.iter().take(20) {
            if let Some((_, v)) = cells.iter().find(|(q_, _)| q_ == &q("OL_I_ID")) {
                let i = parse_num(v) as u32;
                let _ =
                    cluster.get(Table::Stock.name(), &fam, &keys::stock(w, i), &q("S_QUANTITY"))?;
                checked += 1;
            }
        }
        let _ = checked;
        self.counts.stock_level += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use hstore::StoreConfig;

    fn loaded() -> (FunctionalCluster, TpccScale) {
        let mut cluster = FunctionalCluster::new(3);
        for _ in 0..2 {
            cluster.add_server(StoreConfig::small_for_tests()).unwrap();
        }
        let scale = TpccScale::tiny();
        loader::load(&mut cluster, &scale, 42).unwrap();
        (cluster, scale)
    }

    #[test]
    fn new_order_advances_district_cursor_and_creates_rows() {
        let (mut cluster, scale) = loaded();
        let mut ex = TxnExecutor::new(scale, 1);
        let fam = Table::family();
        let before: Vec<u64> = (1..=scale.warehouses)
            .flat_map(|w| (1..=scale.districts_per_warehouse).map(move |d| (w, d)))
            .map(|(w, d)| {
                parse_num(
                    &cluster
                        .get(Table::District.name(), &fam, &keys::district(w, d), &q("D_NEXT_O_ID"))
                        .unwrap()
                        .unwrap(),
                )
            })
            .collect();
        ex.new_order(&mut cluster).unwrap();
        let after: Vec<u64> = (1..=scale.warehouses)
            .flat_map(|w| (1..=scale.districts_per_warehouse).map(move |d| (w, d)))
            .map(|(w, d)| {
                parse_num(
                    &cluster
                        .get(Table::District.name(), &fam, &keys::district(w, d), &q("D_NEXT_O_ID"))
                        .unwrap()
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(before.iter().sum::<u64>() + 1, after.iter().sum::<u64>());
        assert_eq!(ex.counts().new_order, 1);
    }

    #[test]
    fn payment_conserves_money() {
        let (mut cluster, scale) = loaded();
        let mut ex = TxnExecutor::new(scale, 2);
        let fam = Table::family();
        ex.payment(&mut cluster).unwrap();
        // Warehouse YTD total equals district YTD total equals the sum of
        // history amounts.
        let mut w_ytd = 0;
        let mut d_ytd = 0;
        for w in 1..=scale.warehouses {
            w_ytd += parse_num(
                &cluster
                    .get(Table::Warehouse.name(), &fam, &keys::warehouse(w), &q("W_YTD"))
                    .unwrap()
                    .unwrap(),
            );
            for d in 1..=scale.districts_per_warehouse {
                d_ytd += parse_num(
                    &cluster
                        .get(Table::District.name(), &fam, &keys::district(w, d), &q("D_YTD"))
                        .unwrap()
                        .unwrap(),
                );
            }
        }
        assert_eq!(w_ytd, d_ytd);
        assert!(w_ytd > 0);
    }

    #[test]
    fn delivery_consumes_pending_orders() {
        let (mut cluster, scale) = loaded();
        let fam = Table::family();
        let count_pending = |cluster: &mut FunctionalCluster| {
            cluster
                .scan(Table::NewOrder.name(), &fam, &keys::new_order(1, 1, 0), 1_000)
                .unwrap()
                .len()
        };
        let before = count_pending(&mut cluster);
        assert!(before > 0, "loader must leave pending orders");
        let mut ex = TxnExecutor::new(scale, 3);
        ex.delivery(&mut cluster).unwrap();
        let after = count_pending(&mut cluster);
        assert!(after < before, "delivery consumed nothing: {before} → {after}");
    }

    #[test]
    fn full_mix_runs_clean() {
        let (mut cluster, scale) = loaded();
        let mut ex = TxnExecutor::new(scale, 4);
        let counts = ex.run(&mut cluster, 200).unwrap();
        assert_eq!(counts.total(), 200);
        // The mix should be roughly honoured.
        assert!(counts.new_order > 60, "{counts:?}");
        assert!(counts.payment > 60, "{counts:?}");
        assert!(counts.order_status + counts.delivery + counts.stock_level > 5, "{counts:?}");
    }

    #[test]
    fn read_only_txns_write_nothing() {
        let (mut cluster, scale) = loaded();
        let fam = Table::family();
        let snapshot = |cluster: &mut FunctionalCluster| {
            parse_num(
                &cluster
                    .get(Table::Warehouse.name(), &fam, &keys::warehouse(1), &q("W_YTD"))
                    .unwrap()
                    .unwrap(),
            )
        };
        let before = snapshot(&mut cluster);
        let mut ex = TxnExecutor::new(scale, 5);
        ex.order_status(&mut cluster).unwrap();
        ex.stock_level(&mut cluster).unwrap();
        assert_eq!(snapshot(&mut cluster), before);
    }
}
