//! TPC-C database population.

use crate::schema::{keys, Table, TpccScale};
use bytes::Bytes;
use cluster::functional::{FResult, FunctionalCluster};
use hstore::{Qualifier, RowKey};
use simcore::SimRng;

fn q(name: &str) -> Qualifier {
    Qualifier::from(name)
}

fn num(v: u64) -> Bytes {
    Bytes::from(v.to_string().into_bytes())
}

fn text(rng: &mut SimRng, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(b'a' + (rng.next_below(26) as u8));
    }
    Bytes::from(out)
}

/// Creates the nine tables pre-split by warehouse and loads the initial
/// population. Returns the number of rows written.
pub fn load(cluster: &mut FunctionalCluster, scale: &TpccScale, seed: u64) -> FResult<u64> {
    let mut rng = SimRng::new(seed).derive("tpcc-load");
    let fam = Table::family();
    let mut rows = 0u64;

    // Pre-split warehouse-keyed tables at warehouse boundaries.
    let wh_splits: Vec<RowKey> = (2..=scale.warehouses).map(keys::warehouse).collect();
    for t in [
        Table::Warehouse,
        Table::District,
        Table::Customer,
        Table::History,
        Table::NewOrder,
        Table::Orders,
        Table::OrderLine,
        Table::Stock,
    ] {
        cluster.create_table(t.name(), std::slice::from_ref(&fam), &wh_splits)?;
    }
    // ITEM is global: split into four ranges like any read table.
    let item_splits: Vec<RowKey> = (1..4).map(|i| keys::item(i * scale.items / 4)).collect();
    cluster.create_table(Table::Item.name(), std::slice::from_ref(&fam), &item_splits)?;

    // ITEM catalog.
    for i in 0..scale.items {
        let row = keys::item(i);
        cluster.put(Table::Item.name(), &fam, row.clone(), q("I_NAME"), text(&mut rng, 14))?;
        cluster.put(
            Table::Item.name(),
            &fam,
            row,
            q("I_PRICE"),
            num(rng.next_range(100, 10_000)),
        )?;
        rows += 1;
    }

    for w in 1..=scale.warehouses {
        let wrow = keys::warehouse(w);
        cluster.put(Table::Warehouse.name(), &fam, wrow.clone(), q("W_NAME"), text(&mut rng, 8))?;
        cluster.put(
            Table::Warehouse.name(),
            &fam,
            wrow.clone(),
            q("W_TAX"),
            num(rng.next_below(20)),
        )?;
        cluster.put(Table::Warehouse.name(), &fam, wrow, q("W_YTD"), num(0))?;
        rows += 1;

        // STOCK for every item.
        for i in 0..scale.items {
            let srow = keys::stock(w, i);
            cluster.put(
                Table::Stock.name(),
                &fam,
                srow.clone(),
                q("S_QUANTITY"),
                num(rng.next_range(10, 100)),
            )?;
            cluster.put(Table::Stock.name(), &fam, srow, q("S_YTD"), num(0))?;
            rows += 1;
        }

        for d in 1..=scale.districts_per_warehouse {
            let drow = keys::district(w, d);
            cluster.put(
                Table::District.name(),
                &fam,
                drow.clone(),
                q("D_TAX"),
                num(rng.next_below(20)),
            )?;
            cluster.put(Table::District.name(), &fam, drow.clone(), q("D_YTD"), num(0))?;
            cluster.put(
                Table::District.name(),
                &fam,
                drow,
                q("D_NEXT_O_ID"),
                num(scale.initial_orders_per_district as u64 + 1),
            )?;
            rows += 1;

            for c in 1..=scale.customers_per_district {
                let crow = keys::customer(w, d, c);
                cluster.put(
                    Table::Customer.name(),
                    &fam,
                    crow.clone(),
                    q("C_LAST"),
                    text(&mut rng, 12),
                )?;
                cluster.put(Table::Customer.name(), &fam, crow.clone(), q("C_BALANCE"), num(0))?;
                cluster.put(Table::Customer.name(), &fam, crow, q("C_DATA"), text(&mut rng, 50))?;
                rows += 1;
            }

            for o in 1..=scale.initial_orders_per_district {
                let orow = keys::order(w, d, o);
                let c = rng.next_range(1, scale.customers_per_district as u64) as u32;
                cluster.put(
                    Table::Orders.name(),
                    &fam,
                    orow.clone(),
                    q("O_C_ID"),
                    num(c as u64),
                )?;
                let lines = rng.next_range(5, 15) as u32;
                cluster.put(Table::Orders.name(), &fam, orow, q("O_OL_CNT"), num(lines as u64))?;
                rows += 1;
                for l in 1..=lines {
                    let lrow = keys::order_line(w, d, o, l);
                    let item = rng.next_below(scale.items as u64) as u32;
                    cluster.put(
                        Table::OrderLine.name(),
                        &fam,
                        lrow.clone(),
                        q("OL_I_ID"),
                        num(item as u64),
                    )?;
                    cluster.put(
                        Table::OrderLine.name(),
                        &fam,
                        lrow,
                        q("OL_AMOUNT"),
                        num(rng.next_range(1, 9_999)),
                    )?;
                    rows += 1;
                }
                // The last third of initial orders are still undelivered.
                if o > scale.initial_orders_per_district * 2 / 3 {
                    cluster.put(
                        Table::NewOrder.name(),
                        &fam,
                        keys::new_order(w, d, o),
                        q("NO_O_ID"),
                        num(o as u64),
                    )?;
                    rows += 1;
                }
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstore::StoreConfig;

    #[test]
    fn tiny_load_populates_all_tables() {
        let mut cluster = FunctionalCluster::new(1);
        for _ in 0..2 {
            cluster.add_server(StoreConfig::small_for_tests()).unwrap();
        }
        let scale = TpccScale::tiny();
        let rows = load(&mut cluster, &scale, 42).unwrap();
        assert!(rows > 500, "loaded only {rows} rows");
        // Spot checks.
        let fam = Table::family();
        assert!(cluster
            .get(Table::Warehouse.name(), &fam, &keys::warehouse(1), &q("W_TAX"))
            .unwrap()
            .is_some());
        assert!(cluster
            .get(Table::Customer.name(), &fam, &keys::customer(2, 2, 20), &q("C_BALANCE"))
            .unwrap()
            .is_some());
        assert!(cluster
            .get(Table::Stock.name(), &fam, &keys::stock(2, 99), &q("S_QUANTITY"))
            .unwrap()
            .is_some());
        let next = cluster
            .get(Table::District.name(), &fam, &keys::district(1, 1), &q("D_NEXT_O_ID"))
            .unwrap()
            .unwrap();
        assert_eq!(next, Bytes::from_static(b"6"));
        // Warehouse-keyed tables are split per warehouse.
        assert_eq!(cluster.table_regions(Table::Stock.name()).len(), 2);
        assert_eq!(cluster.table_regions(Table::Item.name()).len(), 4);
    }
}
