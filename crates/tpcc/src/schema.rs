//! The nine TPC-C tables and their HBase key encodings.
//!
//! Follows the PyTPCC HBase driver's approach (§6.3 of the paper): every
//! table is a key-value mapping with warehouse-prefixed composite row keys
//! so that tables partition horizontally by warehouse (the usual setting
//! for distributed TPC-C, Stonebraker et al.). ITEM is global and
//! read-only.

use hstore::{Family, RowKey};

/// The nine TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table {
    /// WAREHOUSE (W rows).
    Warehouse,
    /// DISTRICT (10 per warehouse).
    District,
    /// CUSTOMER (3 000 per district).
    Customer,
    /// HISTORY (append-only).
    History,
    /// NEW-ORDER (pending orders).
    NewOrder,
    /// ORDERS.
    Orders,
    /// ORDER-LINE (~10 per order).
    OrderLine,
    /// ITEM (100 000, global, read-only).
    Item,
    /// STOCK (100 000 per warehouse).
    Stock,
}

impl Table {
    /// All nine tables.
    pub const ALL: [Table; 9] = [
        Table::Warehouse,
        Table::District,
        Table::Customer,
        Table::History,
        Table::NewOrder,
        Table::Orders,
        Table::OrderLine,
        Table::Item,
        Table::Stock,
    ];

    /// The table's name in the store.
    pub fn name(self) -> &'static str {
        match self {
            Table::Warehouse => "warehouse",
            Table::District => "district",
            Table::Customer => "customer",
            Table::History => "history",
            Table::NewOrder => "new_order",
            Table::Orders => "orders",
            Table::OrderLine => "order_line",
            Table::Item => "item",
            Table::Stock => "stock",
        }
    }

    /// The single column family every TPC-C table uses.
    pub fn family() -> Family {
        Family::from("d")
    }
}

/// Row-key constructors (zero-padded so lexicographic order matches
/// numeric order, keeping warehouse ranges contiguous).
pub mod keys {
    use super::RowKey;

    /// WAREHOUSE row key.
    pub fn warehouse(w: u32) -> RowKey {
        RowKey::from(format!("{w:05}").as_str())
    }

    /// DISTRICT row key.
    pub fn district(w: u32, d: u32) -> RowKey {
        RowKey::from(format!("{w:05}.{d:02}").as_str())
    }

    /// CUSTOMER row key.
    pub fn customer(w: u32, d: u32, c: u32) -> RowKey {
        RowKey::from(format!("{w:05}.{d:02}.{c:05}").as_str())
    }

    /// HISTORY row key (unique per payment).
    pub fn history(w: u32, d: u32, c: u32, seq: u64) -> RowKey {
        RowKey::from(format!("{w:05}.{d:02}.{c:05}.{seq:010}").as_str())
    }

    /// NEW-ORDER row key; order ids are inverted so the *oldest* pending
    /// order sorts first (Delivery pops the front with a 1-row scan).
    pub fn new_order(w: u32, d: u32, o: u32) -> RowKey {
        RowKey::from(format!("{w:05}.{d:02}.{:08}", o).as_str())
    }

    /// ORDERS row key.
    pub fn order(w: u32, d: u32, o: u32) -> RowKey {
        RowKey::from(format!("{w:05}.{d:02}.{o:08}").as_str())
    }

    /// ORDER-LINE row key.
    pub fn order_line(w: u32, d: u32, o: u32, l: u32) -> RowKey {
        RowKey::from(format!("{w:05}.{d:02}.{o:08}.{l:02}").as_str())
    }

    /// ITEM row key (global).
    pub fn item(i: u32) -> RowKey {
        RowKey::from(format!("{i:06}").as_str())
    }

    /// STOCK row key.
    pub fn stock(w: u32, i: u32) -> RowKey {
        RowKey::from(format!("{w:05}.{i:06}").as_str())
    }
}

/// Scale parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccScale {
    /// Number of warehouses.
    pub warehouses: u32,
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: u32,
    /// Customers per district (TPC-C: 3 000).
    pub customers_per_district: u32,
    /// Items in the catalog (TPC-C: 100 000).
    pub items: u32,
    /// Initial orders per district (TPC-C: 3 000).
    pub initial_orders_per_district: u32,
}

impl TpccScale {
    /// The paper's configuration: 30 warehouses (≈ 15 GB).
    pub fn paper() -> Self {
        TpccScale {
            warehouses: 30,
            districts_per_warehouse: 10,
            customers_per_district: 3_000,
            items: 100_000,
            initial_orders_per_district: 3_000,
        }
    }

    /// A tiny scale for functional tests.
    pub fn tiny() -> Self {
        TpccScale {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 100,
            initial_orders_per_district: 5,
        }
    }

    /// HBase stores every column as a full KeyValue that repeats the row
    /// key, family, qualifier and timestamp; with TPC-C's long composite
    /// keys and ~9 columns per row that inflates the raw relational bytes
    /// by roughly this factor. The paper's 30 warehouses (~2 GB relational)
    /// load as ≈ 15 GB in HBase (§6.3).
    pub const HBASE_CELL_OVERHEAD: u64 = 7;

    /// Approximate *stored* bytes (for the simulation's partition sizes):
    /// representative TPC-C row widths times the HBase cell overhead.
    pub fn approx_bytes(&self) -> u64 {
        let w = self.warehouses as u64;
        let d = w * self.districts_per_warehouse as u64;
        let c = d * self.customers_per_district as u64;
        let o = d * self.initial_orders_per_district as u64;
        // Row-width estimates: customer 655 B, stock 306 B, order-line 54 B,
        // orders 24 B, item 82 B, district 95 B, warehouse 89 B.
        let relational = w * 89
            + d * 95
            + c * 655
            + o * 24
            + o * 10 * 54
            + self.items as u64 * 82
            + w * self.items as u64 * 306;
        relational * Self::HBASE_CELL_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_keeps_warehouses_contiguous() {
        assert!(keys::stock(1, 99) < keys::stock(2, 0));
        assert!(keys::customer(1, 2, 3) < keys::customer(1, 2, 4));
        assert!(keys::customer(1, 9, 0) < keys::customer(2, 0, 0));
        assert!(keys::order_line(3, 1, 7, 1) < keys::order_line(3, 1, 7, 2));
    }

    #[test]
    fn paper_scale_is_about_15_gb() {
        let bytes = TpccScale::paper().approx_bytes();
        assert!(
            (8_000_000_000..20_000_000_000).contains(&bytes),
            "scale estimate {bytes} should be near the paper's 15 GB"
        );
    }

    #[test]
    fn all_tables_have_distinct_names() {
        let mut names: Vec<&str> = Table::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
