//! Deploying TPC-C onto the cluster simulation.
//!
//! TPC-C tables partition horizontally by warehouse (§6.3: "5 warehouses
//! per RegionServer"). For the simulation we group each warehouse slice's
//! tables into two partitions with very different access patterns — which
//! is precisely the heterogeneity MeT exploits without being told anything
//! about TPC-C:
//!
//! * a **stock/orders** partition (STOCK, ORDERS, ORDER-LINE, NEW-ORDER,
//!   HISTORY): insert- and update-heavy, scanned by Delivery/StockLevel;
//! * a **customer** partition (CUSTOMER, DISTRICT, WAREHOUSE): mixed
//!   read/write;
//!
//! plus the global read-only **ITEM** partitions.
//!
//! The per-kind op weights below are derived from the transactions'
//! storage footprints under the standard mix (45/43/4/4/4), yielding the
//! 8 % read-only / 92 % update profile the paper quotes.

use crate::schema::TpccScale;
use crate::txn::TxnKind;
use cluster::{ClientGroup, OpMix, PartitionId, PartitionSpec, SimCluster};

/// Storage-operation footprint of one transaction kind:
/// `(r_item, r_stock, r_cust, w_stock, w_orders, w_cust, s_orders)` —
/// reads against ITEM / STOCK / the customer group (CUSTOMER, DISTRICT,
/// WAREHOUSE), writes against STOCK / the orders group (ORDERS,
/// ORDER-LINE, NEW-ORDER, HISTORY) / the customer group, and scans against
/// the orders group. Counts match [`crate::txn`]'s implementations.
pub fn footprint(kind: TxnKind) -> (f64, f64, f64, f64, f64, f64, f64) {
    match kind {
        TxnKind::NewOrder => (10.0, 10.0, 3.0, 10.0, 23.0, 1.0, 0.0),
        TxnKind::Payment => (0.0, 0.0, 3.0, 0.0, 1.0, 3.0, 0.0),
        TxnKind::OrderStatus => (0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0),
        TxnKind::Delivery => (0.0, 0.0, 10.0, 0.0, 20.0, 10.0, 20.0),
        TxnKind::StockLevel => (0.0, 20.0, 1.0, 0.0, 0.0, 0.0, 1.0),
    }
}

/// Mix-weighted storage ops per client transaction, same component order
/// as [`footprint`].
pub fn weighted_footprint() -> (f64, f64, f64, f64, f64, f64, f64) {
    let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    for (kind, w) in TxnKind::mix() {
        let f = footprint(kind);
        acc.0 += w * f.0;
        acc.1 += w * f.1;
        acc.2 += w * f.2;
        acc.3 += w * f.3;
        acc.4 += w * f.4;
        acc.5 += w * f.5;
        acc.6 += w * f.6;
    }
    acc
}

/// A deployed TPC-C database in the simulation.
#[derive(Debug, Clone)]
pub struct TpccDeployment {
    /// Scale deployed.
    pub scale: TpccScale,
    /// Global read-only ITEM partitions.
    pub item_partitions: Vec<PartitionId>,
    /// Per-slice `(stock_a, stock_b, orders, customer)` partitions —
    /// STOCK is pre-split in two, mirroring its region count (it is the
    /// largest table), which is what makes MeT's partition-count-
    /// proportional grouping allocate the read/write group its fair share
    /// of nodes.
    pub slices: Vec<(PartitionId, PartitionId, PartitionId, PartitionId)>,
}

impl TpccDeployment {
    /// Every partition, in creation order.
    pub fn all_partitions(&self) -> Vec<PartitionId> {
        let mut out = self.item_partitions.clone();
        for (a, b, c, d) in &self.slices {
            out.push(*a);
            out.push(*b);
            out.push(*c);
            out.push(*d);
        }
        out
    }

    /// The closed-loop terminal pool (the paper runs 300 clients, §6.3).
    pub fn client_group(&self, clients: f64, think_ms: f64) -> ClientGroup {
        let (r_item, r_stock, r_cust, w_stock, w_orders, w_cust, s_orders) = weighted_footprint();
        let reads = r_item + r_stock + r_cust;
        let writes = w_stock + w_orders + w_cust;
        let scans = s_orders;
        let n_slices = self.slices.len() as f64;
        let n_items = self.item_partitions.len() as f64;

        let mut read_weights = Vec::new();
        for p in &self.item_partitions {
            read_weights.push((*p, r_item / reads / n_items));
        }
        for (stock_a, stock_b, _orders, cust) in &self.slices {
            read_weights.push((*stock_a, r_stock / reads / n_slices / 2.0));
            read_weights.push((*stock_b, r_stock / reads / n_slices / 2.0));
            read_weights.push((*cust, r_cust / reads / n_slices));
        }
        let mut write_weights = Vec::new();
        for (stock_a, stock_b, orders, cust) in &self.slices {
            write_weights.push((*stock_a, w_stock / writes / n_slices / 2.0));
            write_weights.push((*stock_b, w_stock / writes / n_slices / 2.0));
            write_weights.push((*orders, w_orders / writes / n_slices));
            write_weights.push((*cust, w_cust / writes / n_slices));
        }
        let scan_weights: Vec<(PartitionId, f64)> =
            self.slices.iter().map(|(_, _, orders, _)| (*orders, 1.0 / n_slices)).collect();
        // Only the orders group grows: ORDERS/ORDER-LINE/NEW-ORDER/HISTORY
        // are inserts; STOCK and CUSTOMER are updated in place.
        let insert_weights = scan_weights.clone();

        ClientGroup {
            name: "tpcc".into(),
            threads: clients,
            think_ms,
            target_rate: None,
            mix: OpMix::new(reads, writes, scans),
            read_weights,
            write_weights,
            scan_weights,
            scan_rows: 10.0,
            // Orders, order lines, new-orders and history are inserts:
            // 13.3 of the 18.4 writes per transaction.
            insert_fraction: 0.72,
            insert_weights,
            // The PyTPCC HBase driver buffers a transaction's mutations
            // into batched RPCs.
            write_cpu_factor: 0.2,
            active: true,
        }
    }
}

/// Per-slice stored-byte estimates `(stock, orders, customer)`, including
/// the HBase cell overhead (see [`TpccScale::approx_bytes`]).
fn slice_bytes(scale: &TpccScale, warehouses_in_slice: u32) -> (f64, f64, f64) {
    let w = warehouses_in_slice as u64;
    let d = w * scale.districts_per_warehouse as u64;
    let c = d * scale.customers_per_district as u64;
    let o = d * scale.initial_orders_per_district as u64;
    let ovh = TpccScale::HBASE_CELL_OVERHEAD;
    let stock = (w * scale.items as u64 * 306 * ovh) as f64;
    let orders = ((o * 24 + o * 10 * 54 + o * 20) * ovh) as f64;
    let customer = ((c * 655 + d * 95 + w * 89) * ovh) as f64;
    (stock, orders, customer)
}

/// Creates the TPC-C partitions (unassigned) for `n_slices` warehouse
/// groups.
pub fn deploy(scale: &TpccScale, n_slices: u32, sim: &mut SimCluster) -> TpccDeployment {
    assert!(n_slices >= 1 && n_slices <= scale.warehouses);
    let item_bytes = (scale.items as u64 * 82 * TpccScale::HBASE_CELL_OVERHEAD) as f64;
    let item_partitions = (0..4)
        .map(|_| {
            sim.create_partition(PartitionSpec {
                table: "item".into(),
                size_bytes: item_bytes / 4.0,
                record_bytes: 82.0,
                // The whole catalog is uniformly popular and tiny: fully
                // cacheable.
                hot_set_fraction: 1.0,
                hot_ops_fraction: 1.0,
            })
        })
        .collect();
    let per_slice = scale.warehouses / n_slices;
    let (stock_bytes, orders_bytes, cust_bytes) = slice_bytes(scale, per_slice.max(1));
    let slices = (0..n_slices)
        .map(|_| {
            let mk_stock = |sim: &mut SimCluster| {
                sim.create_partition(PartitionSpec {
                    table: "stock".into(),
                    size_bytes: stock_bytes / 2.0,
                    record_bytes: 306.0 * TpccScale::HBASE_CELL_OVERHEAD as f64,
                    // TPC-C picks items with NURand(8191): the biased OR
                    // concentrates most touches on a modest slice of the
                    // catalog, and read-update stock rows ride the memstore.
                    hot_set_fraction: 0.15,
                    hot_ops_fraction: 0.85,
                })
            };
            let stock_a = mk_stock(sim);
            let stock_b = mk_stock(sim);
            let orders = sim.create_partition(PartitionSpec {
                table: "orders".into(),
                size_bytes: orders_bytes,
                record_bytes: 120.0,
                // Only the recent tail of orders is ever scanned.
                hot_set_fraction: 0.1,
                hot_ops_fraction: 0.9,
            });
            let cust = sim.create_partition(PartitionSpec {
                table: "customer".into(),
                size_bytes: cust_bytes,
                record_bytes: 655.0,
                // Customers are picked with NURand(1023) out of 3 000.
                hot_set_fraction: 0.33,
                hot_ops_fraction: 0.70,
            });
            (stock_a, stock_b, orders, cust)
        })
        .collect();
    TpccDeployment { scale: *scale, item_partitions, slices }
}

/// Converts a transaction rate (client requests/s) into the tpmC metric
/// (NewOrder transactions per minute).
pub fn tpmc_from_txn_rate(txns_per_sec: f64) -> f64 {
    txns_per_sec * 0.45 * 60.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::CostParams;

    #[test]
    fn footprint_matches_paper_update_share() {
        // §6.3: 8 % read-only, 92 % update transactions.
        let read_only: f64 = TxnKind::mix()
            .iter()
            .filter(|(k, _)| matches!(k, TxnKind::OrderStatus | TxnKind::StockLevel))
            .map(|(_, w)| w)
            .sum();
        assert!((read_only - 0.08).abs() < 1e-9);
    }

    #[test]
    fn weighted_footprint_is_write_heavy() {
        let (ri, rs, rc, ws, wo, wc, so) = weighted_footprint();
        let reads = ri + rs + rc;
        let writes = ws + wo + wc;
        assert!(writes > reads, "TPC-C must be write-intensive: r={reads} w={writes}");
        assert!(so > 0.0 && so < 2.0);
    }

    #[test]
    fn deploy_builds_weights_that_sum_to_one() {
        let mut sim = SimCluster::new(CostParams::default(), 1);
        let d = deploy(&TpccScale::paper(), 6, &mut sim);
        assert_eq!(d.slices.len(), 6);
        assert_eq!(d.item_partitions.len(), 4);
        let g = d.client_group(300.0, 5.0);
        for (name, ws) in
            [("read", &g.read_weights), ("write", &g.write_weights), ("scan", &g.scan_weights)]
        {
            let sum: f64 = ws.iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{name} weights sum {sum}");
        }
        // Writes avoid the read-only item partitions entirely.
        for p in &d.item_partitions {
            assert!(!g.write_weights.iter().any(|(q, _)| q == p));
        }
        // Scans land only on the orders partitions.
        for (_, _, orders, _) in &d.slices {
            assert!(g.scan_weights.iter().any(|(q, _)| q == orders));
        }
    }

    #[test]
    fn paper_deployment_size_is_plausible() {
        let mut sim = SimCluster::new(CostParams::default(), 2);
        let d = deploy(&TpccScale::paper(), 6, &mut sim);
        let snap_total: f64 = {
            use cluster::ElasticCluster;
            sim.snapshot().partitions.iter().map(|p| p.size_bytes as f64).sum()
        };
        let _ = d;
        assert!(
            (8e9..20e9).contains(&snap_total),
            "deployed bytes {snap_total:.2e} should be near the paper's 15 GB"
        );
    }

    #[test]
    fn tpmc_conversion() {
        // 940 transactions/s ≈ 25 380 tpmC (the paper's baseline).
        let tpmc = tpmc_from_txn_rate(940.0);
        assert!((tpmc - 25_380.0).abs() < 1.0);
    }
}
