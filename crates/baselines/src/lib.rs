#![warn(missing_docs)]

//! Baselines the paper compares MeT against.
//!
//! * [`manual`] — the three §3.3 placement/configuration strategies
//!   (Random-Homogeneous, Manual-Homogeneous, Manual-Heterogeneous),
//!   needed by the Figure 1 and Figure 4 experiments.
//! * [`tiramola`] — the system-metric-threshold autoscaler of
//!   Konstantinou et al. (CIKM'11), MeT's elastic competitor in the
//!   Figure 5/6 experiments: homogeneous nodes, add/remove only, no
//!   reconfiguration, removal only when every node idles.

pub mod autoscaling;
pub mod manual;
pub mod tiramola;

pub use autoscaling::{Aggregate, AutoScaler, Comparison, Metric, Rule, ScalingAction};
pub use manual::{
    build_manual_heterogeneous, build_manual_homogeneous, build_random_homogeneous,
    search_balanced_placement, MANUAL_SEARCH_CANDIDATES,
};
pub use tiramola::{Tiramola, TiramolaConfig};
