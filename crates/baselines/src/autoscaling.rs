//! An Amazon CloudWatch + Auto Scaling style rule engine (§7 of the
//! paper: "The Amazon Cloud Watch service gathers system metrics while the
//! Auto Scaling allows a user to define rules based on such metrics").
//!
//! Like tiramola, this baseline is oblivious to the NoSQL layer: rules
//! watch aggregated *system* metrics and add/remove whole homogeneous
//! nodes. Unlike [`crate::tiramola`], which hard-codes the CIKM'11
//! behaviour, this engine evaluates arbitrary user-defined alarms —
//! matching how one would actually deploy CloudWatch against an HBase
//! fleet.

use cluster::admin::{ElasticCluster, ServerHealth};
use hstore::StoreConfig;
use simcore::{SimDuration, SimTime};
use telemetry::{Telemetry, TelemetryEvent};

/// Which system metric an alarm watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// CPU utilization.
    Cpu,
    /// I/O wait.
    IoWait,
    /// Memory utilization.
    Memory,
    /// Requests per second (per node).
    Rps,
}

/// How per-node samples aggregate into the alarm's statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Fleet average.
    Average,
    /// Busiest node.
    Max,
    /// Idlest node.
    Min,
}

/// Alarm comparison direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Fires when the statistic exceeds the threshold.
    GreaterThan,
    /// Fires when the statistic falls below the threshold.
    LessThan,
}

/// What a fired alarm does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingAction {
    /// Provision this many nodes.
    Add(usize),
    /// Decommission this many nodes.
    Remove(usize),
}

/// One user-defined scaling rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Metric watched.
    pub metric: Metric,
    /// Aggregation statistic.
    pub aggregate: Aggregate,
    /// Comparison direction.
    pub comparison: Comparison,
    /// Threshold value.
    pub threshold: f64,
    /// Consecutive breaching evaluation periods required before firing
    /// (CloudWatch's "datapoints to alarm").
    pub periods: usize,
    /// Action on firing.
    pub action: ScalingAction,
}

impl Rule {
    /// The classic scale-out rule: average CPU above `threshold` for
    /// `periods` samples adds one node.
    pub fn scale_out_on_cpu(threshold: f64, periods: usize) -> Rule {
        Rule {
            metric: Metric::Cpu,
            aggregate: Aggregate::Average,
            comparison: Comparison::GreaterThan,
            threshold,
            periods,
            action: ScalingAction::Add(1),
        }
    }

    /// The classic scale-in rule: the busiest node's CPU below `threshold`
    /// for `periods` samples removes one node (tiramola's "every node
    /// underutilized" semantics, expressed as a Max aggregate).
    pub fn scale_in_on_idle(threshold: f64, periods: usize) -> Rule {
        Rule {
            metric: Metric::Cpu,
            aggregate: Aggregate::Max,
            comparison: Comparison::LessThan,
            threshold,
            periods,
            action: ScalingAction::Remove(1),
        }
    }
}

/// The rule engine.
pub struct AutoScaler {
    rules: Vec<Rule>,
    breach_counts: Vec<usize>,
    node_config: StoreConfig,
    sample_interval: SimDuration,
    cooldown: SimDuration,
    min_nodes: usize,
    max_nodes: usize,
    last_sample: Option<SimTime>,
    last_action: Option<SimTime>,
    actions: Vec<(SimTime, ScalingAction)>,
    telemetry: Telemetry,
}

impl AutoScaler {
    /// Creates an engine over the given rules.
    pub fn new(
        rules: Vec<Rule>,
        node_config: StoreConfig,
        sample_interval: SimDuration,
        cooldown: SimDuration,
        min_nodes: usize,
        max_nodes: usize,
    ) -> Self {
        assert!(!rules.is_empty(), "an autoscaler needs at least one rule");
        assert!(min_nodes >= 1 && max_nodes >= min_nodes);
        let n = rules.len();
        AutoScaler {
            rules,
            breach_counts: vec![0; n],
            node_config,
            sample_interval,
            cooldown,
            min_nodes,
            max_nodes,
            last_sample: None,
            last_action: None,
            actions: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Records each alarm firing as a [`TelemetryEvent::RuleFired`] audit
    /// entry through `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Scaling actions taken so far.
    pub fn actions(&self) -> &[(SimTime, ScalingAction)] {
        &self.actions
    }

    fn statistic(
        &self,
        rule: &Rule,
        nodes: &[(f64, f64, f64, f64)], // (cpu, io, mem, rps)
    ) -> f64 {
        let values: Vec<f64> = nodes
            .iter()
            .map(|(cpu, io, mem, rps)| match rule.metric {
                Metric::Cpu => *cpu,
                Metric::IoWait => *io,
                Metric::Memory => *mem,
                Metric::Rps => *rps,
            })
            .collect();
        match rule.aggregate {
            Aggregate::Average => values.iter().sum::<f64>() / values.len() as f64,
            Aggregate::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }

    /// Drives the engine for one simulation tick.
    pub fn tick(&mut self, cluster: &mut dyn ElasticCluster) {
        let now = cluster.now();
        let due = match self.last_sample {
            None => true,
            Some(t) => now.since(t) >= self.sample_interval,
        };
        if !due {
            return;
        }
        self.last_sample = Some(now);

        let snapshot = cluster.snapshot();
        let nodes: Vec<(f64, f64, f64, f64)> = snapshot
            .servers
            .iter()
            .filter(|s| s.health == ServerHealth::Online)
            .map(|s| (s.cpu_util, s.io_wait, s.mem_util, s.requests_per_sec))
            .collect();
        if nodes.is_empty() {
            return;
        }
        let provisioning = snapshot.servers.iter().any(|s| s.health == ServerHealth::Provisioning);

        // Evaluate every alarm's breach streak even during cooldown — the
        // streak is a property of the metric, not of our ability to act.
        let mut fired: Option<(usize, f64, ScalingAction)> = None;
        for (i, rule) in self.rules.iter().enumerate() {
            let stat = self.statistic(rule, &nodes);
            let breached = match rule.comparison {
                Comparison::GreaterThan => stat > rule.threshold,
                Comparison::LessThan => stat < rule.threshold,
            };
            if breached {
                self.breach_counts[i] += 1;
                if self.breach_counts[i] >= rule.periods && fired.is_none() {
                    fired = Some((i, stat, rule.action));
                }
            } else {
                self.breach_counts[i] = 0;
            }
        }

        let Some((rule_idx, observed, action)) = fired else { return };
        if provisioning {
            return; // a scaling activity is already in flight
        }
        if let Some(t) = self.last_action {
            if now.since(t) < self.cooldown {
                return;
            }
        }
        let online = snapshot.online_servers();
        match action {
            ScalingAction::Add(n) => {
                let room = self.max_nodes.saturating_sub(online.len());
                for _ in 0..n.min(room) {
                    if cluster.provision_server(self.node_config.clone()).is_err() {
                        break;
                    }
                }
                if room > 0 {
                    self.record(now, rule_idx, observed, action);
                }
            }
            ScalingAction::Remove(n) => {
                let removable = online.len().saturating_sub(self.min_nodes);
                let mut removed = 0;
                for server in online.iter().rev().take(n.min(removable)) {
                    if cluster.decommission_server(*server).is_ok() {
                        removed += 1;
                    }
                }
                if removed > 0 {
                    self.record(now, rule_idx, observed, action);
                }
            }
        }
    }

    fn record(&mut self, now: SimTime, rule_idx: usize, observed: f64, action: ScalingAction) {
        self.actions.push((now, action));
        self.last_action = Some(now);
        for c in &mut self.breach_counts {
            *c = 0;
        }
        if self.telemetry.is_enabled() {
            let rule = &self.rules[rule_idx];
            self.telemetry.counter_add(
                "baseline_rules_fired_total",
                &[("controller", "autoscaler")],
                1,
            );
            self.telemetry.emit(
                now,
                TelemetryEvent::RuleFired {
                    controller: "autoscaler".into(),
                    rule: format!(
                        "{:?}({:?}) {} {} for {} periods",
                        rule.aggregate,
                        rule.metric,
                        match rule.comparison {
                            Comparison::GreaterThan => ">",
                            Comparison::LessThan => "<",
                        },
                        rule.threshold,
                        rule.periods,
                    ),
                    observed,
                    threshold: rule.threshold,
                    action: match action {
                        ScalingAction::Add(n) => format!("add {n} node(s)"),
                        ScalingAction::Remove(n) => format!("remove {n} node(s)"),
                    },
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClientGroup, CostParams, OpMix, PartitionId, PartitionSpec, SimCluster};

    fn busy_sim(seed: u64) -> SimCluster {
        let mut sim = SimCluster::new(CostParams::default(), seed);
        for _ in 0..2 {
            sim.add_server_immediate(StoreConfig::default_homogeneous());
        }
        let parts: Vec<PartitionId> = (0..6)
            .map(|_| {
                sim.create_partition(PartitionSpec {
                    table: "t".into(),
                    size_bytes: 2e9,
                    record_bytes: 1_450.0,
                    hot_set_fraction: 0.4,
                    hot_ops_fraction: 0.5,
                })
            })
            .collect();
        sim.random_balance_unassigned();
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "load",
            500.0,
            1.0,
            None,
            OpMix::new(0.6, 0.4, 0.0),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.0,
        ));
        sim
    }

    #[test]
    fn scale_out_rule_fires_after_consecutive_breaches() {
        let mut sim = busy_sim(1);
        let rule = Rule {
            metric: Metric::IoWait,
            aggregate: Aggregate::Average,
            comparison: Comparison::GreaterThan,
            threshold: 0.5,
            periods: 3,
            action: ScalingAction::Add(1),
        };
        let mut scaler = AutoScaler::new(
            vec![rule],
            StoreConfig::default_homogeneous(),
            SimDuration::from_secs(30),
            SimDuration::from_mins(2),
            1,
            8,
        );
        for _ in 0..(8 * 60) {
            sim.step();
            scaler.tick(&mut sim);
        }
        assert!(!scaler.actions().is_empty(), "overload never triggered the alarm");
        assert!(sim.online_server_ids().len() > 2);
    }

    #[test]
    fn max_nodes_caps_growth() {
        let mut sim = busy_sim(2);
        let mut scaler = AutoScaler::new(
            vec![Rule {
                metric: Metric::IoWait,
                aggregate: Aggregate::Average,
                comparison: Comparison::GreaterThan,
                threshold: 0.1,
                periods: 1,
                action: ScalingAction::Add(2),
            }],
            StoreConfig::default_homogeneous(),
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
            1,
            4,
        );
        for _ in 0..(10 * 60) {
            sim.step();
            scaler.tick(&mut sim);
        }
        assert!(sim.online_server_ids().len() <= 4, "max_nodes violated");
    }

    #[test]
    fn scale_in_respects_min_nodes_and_requires_quiet() {
        let mut sim = busy_sim(3);
        let mut scaler = AutoScaler::new(
            vec![Rule::scale_in_on_idle(0.05, 2)],
            StoreConfig::default_homogeneous(),
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
            2,
            8,
        );
        // Busy cluster: the idle rule must not fire.
        for _ in 0..(5 * 60) {
            sim.step();
            scaler.tick(&mut sim);
        }
        assert_eq!(sim.online_server_ids().len(), 2, "removed while busy");
        // Quiet cluster: it may fire, but never below min_nodes (2).
        sim.set_group_active("load", false);
        for _ in 0..(10 * 60) {
            sim.step();
            scaler.tick(&mut sim);
        }
        assert_eq!(sim.online_server_ids().len(), 2, "violated min_nodes");
    }

    #[test]
    fn breach_streak_resets_on_recovery() {
        let mut sim = busy_sim(4);
        let mut scaler = AutoScaler::new(
            vec![Rule::scale_out_on_cpu(0.99, 1_000_000)], // effectively never
            StoreConfig::default_homogeneous(),
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
            1,
            8,
        );
        for _ in 0..(3 * 60) {
            sim.step();
            scaler.tick(&mut sim);
        }
        assert!(scaler.actions().is_empty());
    }
}
