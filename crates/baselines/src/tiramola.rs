//! The tiramola baseline (Konstantinou et al., CIKM'11), as characterized
//! in §6.4 and §7 of the MeT paper.
//!
//! tiramola (like Amazon CloudWatch + Auto Scaling) watches user-defined
//! thresholds on *system* metrics only and adds or removes whole nodes:
//!
//! * it is oblivious to the NoSQL layer — no reconfiguration, no data
//!   balancing, no migrations (HBase's own randomized count balancer does
//!   whatever balancing happens);
//! * every node runs the same homogeneous configuration;
//! * it "only releases resources when every node in the cluster is
//!   underutilized", which cannot be parameterized (§6.4).

use cluster::admin::{ElasticCluster, ServerHealth};
use hstore::StoreConfig;
use simcore::smoothing::ExpSmoother;
use simcore::{SimDuration, SimTime};
use telemetry::{Telemetry, TelemetryEvent};

/// tiramola's thresholds and timing.
#[derive(Debug, Clone)]
pub struct TiramolaConfig {
    /// Sampling period (same 30 s as MeT, per §6.1 "the period of 30
    /// seconds is the same used by other approaches \[13\]").
    pub monitor_interval: SimDuration,
    /// Samples before acting.
    pub min_samples: usize,
    /// Add a node when average CPU exceeds this.
    pub cpu_high: f64,
    /// A node counts as underutilized below this.
    pub cpu_low: f64,
    /// Minimum time between scaling actions (lets a booted node take
    /// effect before the next decision).
    pub action_cooldown: SimDuration,
}

impl Default for TiramolaConfig {
    fn default() -> Self {
        TiramolaConfig {
            monitor_interval: SimDuration::from_secs(30),
            min_samples: 6,
            cpu_high: 0.85,
            cpu_low: 0.30,
            action_cooldown: SimDuration::from_mins(3),
        }
    }
}

/// The tiramola autoscaler.
pub struct Tiramola {
    cfg: TiramolaConfig,
    node_config: StoreConfig,
    cpu: ExpSmoother,
    max_underutil_cpu: ExpSmoother,
    last_sample: Option<SimTime>,
    last_action: Option<SimTime>,
    additions: u64,
    removals: u64,
    telemetry: Telemetry,
}

impl Tiramola {
    /// Creates a tiramola instance deploying `node_config` on every node
    /// it adds.
    pub fn new(cfg: TiramolaConfig, node_config: StoreConfig) -> Self {
        Tiramola {
            cpu: ExpSmoother::new(0.5),
            max_underutil_cpu: ExpSmoother::new(0.5),
            cfg,
            node_config,
            last_sample: None,
            last_action: None,
            additions: 0,
            removals: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Records each threshold-rule firing as a [`TelemetryEvent::RuleFired`]
    /// audit entry through `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Nodes added so far.
    pub fn additions(&self) -> u64 {
        self.additions
    }

    /// Nodes removed so far.
    pub fn removals(&self) -> u64 {
        self.removals
    }

    /// Drives tiramola for one simulation tick.
    pub fn tick(&mut self, cluster: &mut dyn ElasticCluster) {
        let now = cluster.now();
        let due = match self.last_sample {
            None => true,
            Some(t) => now.since(t) >= self.cfg.monitor_interval,
        };
        if !due {
            return;
        }
        self.last_sample = Some(now);

        let snapshot = cluster.snapshot();
        let online: Vec<_> =
            snapshot.servers.iter().filter(|s| s.health == ServerHealth::Online).collect();
        // Nodes still provisioning gate scaling decisions: CloudWatch-style
        // rules pause while a scaling activity is in flight.
        let provisioning = snapshot.servers.iter().any(|s| s.health == ServerHealth::Provisioning);
        if online.is_empty() {
            return;
        }
        // tiramola watches system-level metrics (CPU, memory, I/O); a
        // node's utilization is its busiest resource.
        let util = |s: &&cluster::admin::ServerMetrics| s.cpu_util.max(s.io_wait);
        let avg_cpu = online.iter().map(util).sum::<f64>() / online.len() as f64;
        // The removal rule needs *every* node underutilized: track the
        // busiest node.
        let max_cpu = online.iter().map(util).fold(0.0, f64::max);
        self.cpu.observe(avg_cpu);
        self.max_underutil_cpu.observe(max_cpu);
        if self.cpu.samples() < self.cfg.min_samples || provisioning {
            return;
        }
        if let Some(t) = self.last_action {
            if now.since(t) < self.cfg.action_cooldown {
                return;
            }
        }

        let smoothed_avg = self.cpu.value().expect("samples checked");
        let smoothed_max = self.max_underutil_cpu.value().expect("samples checked");
        if smoothed_avg > self.cfg.cpu_high {
            if cluster.provision_server(self.node_config.clone()).is_ok() {
                self.additions += 1;
                self.last_action = Some(now);
                self.reset_window();
                self.rule_fired(now, "avg_util_high", smoothed_avg, self.cfg.cpu_high, "add_node");
            }
        } else if smoothed_max < self.cfg.cpu_low && online.len() > 1 {
            // Every node underutilized → release one (the last).
            let victim = online.last().expect("non-empty").server;
            if cluster.decommission_server(victim).is_ok() {
                self.removals += 1;
                self.last_action = Some(now);
                self.reset_window();
                self.rule_fired(
                    now,
                    "all_nodes_idle",
                    smoothed_max,
                    self.cfg.cpu_low,
                    "remove_node",
                );
            }
        }
    }

    fn reset_window(&mut self) {
        self.cpu.reset();
        self.max_underutil_cpu.reset();
    }

    fn rule_fired(&self, now: SimTime, rule: &str, observed: f64, threshold: f64, action: &str) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.counter_add("baseline_rules_fired_total", &[("controller", "tiramola")], 1);
        self.telemetry.emit(
            now,
            TelemetryEvent::RuleFired {
                controller: "tiramola".into(),
                rule: rule.into(),
                observed,
                threshold,
                action: action.into(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClientGroup, CostParams, OpMix, PartitionId, PartitionSpec, SimCluster};

    fn overloaded_cluster(seed: u64) -> SimCluster {
        let mut sim = SimCluster::new(CostParams::default(), seed);
        for _ in 0..2 {
            sim.add_server_immediate(StoreConfig::default_homogeneous());
        }
        let parts: Vec<PartitionId> = (0..6)
            .map(|_| {
                sim.create_partition(PartitionSpec {
                    table: "t".into(),
                    size_bytes: 2e9,
                    record_bytes: 1_000.0,
                    hot_set_fraction: 0.4,
                    hot_ops_fraction: 0.5,
                })
            })
            .collect();
        sim.random_balance_unassigned();
        sim.set_auto_balance(Some(SimDuration::from_mins(5)));
        let w = 1.0 / parts.len() as f64;
        sim.add_group(ClientGroup::with_common_weights(
            "load",
            400.0,
            0.5,
            None,
            OpMix::new(0.65, 0.35, 0.0),
            parts.iter().map(|p| (*p, w)).collect(),
            1.0,
            0.0,
        ));
        sim
    }

    #[test]
    fn adds_nodes_under_overload() {
        let mut sim = overloaded_cluster(1);
        let mut t = Tiramola::new(TiramolaConfig::default(), StoreConfig::default_homogeneous());
        for _ in 0..(12 * 60) {
            sim.step();
            t.tick(&mut sim);
        }
        assert!(t.additions() >= 1, "tiramola never scaled up");
        assert!(sim.online_server_ids().len() >= 3);
    }

    #[test]
    fn removes_only_when_all_nodes_idle() {
        let mut sim = SimCluster::new(CostParams::default(), 2);
        for _ in 0..4 {
            sim.add_server_immediate(StoreConfig::default_homogeneous());
        }
        let hot = sim.create_partition(PartitionSpec {
            table: "t".into(),
            size_bytes: 1e9,
            record_bytes: 1_000.0,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
        });
        sim.random_balance_unassigned();
        // One busy node, three idle: tiramola must NOT remove.
        sim.add_group(ClientGroup::with_common_weights(
            "hot",
            200.0,
            0.5,
            None,
            OpMix::read_only(),
            vec![(hot, 1.0)],
            1.0,
            0.0,
        ));
        let mut t = Tiramola::new(TiramolaConfig::default(), StoreConfig::default_homogeneous());
        for _ in 0..(10 * 60) {
            sim.step();
            t.tick(&mut sim);
        }
        assert_eq!(t.removals(), 0, "removed despite a busy node");

        // Kill the load: now everything idles and removal may proceed.
        sim.set_group_active("hot", false);
        for _ in 0..(10 * 60) {
            sim.step();
            t.tick(&mut sim);
        }
        assert!(t.removals() >= 1, "never scaled down an idle cluster");
    }
}
