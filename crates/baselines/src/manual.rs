//! The three manual placement/configuration strategies of §3.3.
//!
//! * **Random-Homogeneous** — out-of-the-box HBase: the randomized data
//!   placement component (even partition *counts*, blind to load) on
//!   identically configured nodes using the 60/40 read/write "direct
//!   mapping" of memory.
//! * **Manual-Homogeneous** — same node configuration, but data placement
//!   balancing the number of requests across nodes. The paper searched 15
//!   candidate distributions and kept the best-measuring one.
//!   [`search_balanced_placement`] generates the candidates;
//!   [`build_manual_homogeneous`] picks by the static criterion (lowest
//!   load variance), while the Figure 1 harness
//!   (`met_bench::fig1::manual_homog_best_placement`) reproduces the
//!   paper's procedure exactly: it *measures* each candidate with a trial
//!   run and keeps the best.
//! * **Manual-Heterogeneous** — partitions clustered by access pattern,
//!   nodes allocated to groups proportionally, each node configured with
//!   its group's Table 1 profile, and load balanced inside each group with
//!   the hotspots on distinct nodes.

use cluster::{PartitionId, ServerId, SimCluster};
use hstore::StoreConfig;
use met::assignment::assign_lpt;
use met::grouping::nodes_per_group;
use met::profiles::ProfileKind;
use simcore::SimRng;
use std::collections::BTreeMap;

/// A partition with its expected request load (requests/s or any
/// proportional unit).
pub type LoadedPartition = (PartitionId, f64);

/// Builds `n` homogeneous servers with the §3.3 direct-mapping
/// configuration and places all unassigned partitions with the randomized
/// even-count balancer. Returns the server ids.
pub fn build_random_homogeneous(sim: &mut SimCluster, n: usize) -> Vec<ServerId> {
    let cfg = StoreConfig::default_homogeneous();
    let servers: Vec<ServerId> = (0..n).map(|_| sim.add_server_immediate(cfg.clone())).collect();
    sim.random_balance_unassigned();
    // Out-of-the-box HBase keeps its randomized count balancer running
    // (5-minute period); the manual strategies pin their placements.
    sim.set_auto_balance(Some(simcore::SimDuration::from_mins(5)));
    servers
}

/// The candidate count the paper's exhaustive search evaluated.
pub const MANUAL_SEARCH_CANDIDATES: usize = 15;

/// Builds `n` homogeneous servers and places partitions so per-node
/// request load is balanced: the best (lowest load variance) of
/// [`MANUAL_SEARCH_CANDIDATES`] randomized balanced placements.
pub fn build_manual_homogeneous(
    sim: &mut SimCluster,
    n: usize,
    partitions: &[LoadedPartition],
    rng: &mut SimRng,
) -> Vec<ServerId> {
    let cfg = StoreConfig::default_homogeneous();
    let servers: Vec<ServerId> = (0..n).map(|_| sim.add_server_immediate(cfg.clone())).collect();
    let placement = search_balanced_placement(partitions, n, rng);
    for (node_idx, parts) in placement.iter().enumerate() {
        for p in parts {
            sim.assign_partition(*p, servers[node_idx]).expect("fresh server accepts partitions");
        }
    }
    servers
}

/// Randomized search for a balanced placement: each candidate is an LPT
/// assignment over a shuffled partition order (shuffling varies which
/// equal-load partitions co-locate); the candidate with the lowest
/// per-node load variance wins.
pub fn search_balanced_placement(
    partitions: &[LoadedPartition],
    nodes: usize,
    rng: &mut SimRng,
) -> Vec<Vec<PartitionId>> {
    let mut best: Option<(f64, Vec<Vec<PartitionId>>)> = None;
    for _ in 0..MANUAL_SEARCH_CANDIDATES {
        let mut shuffled = partitions.to_vec();
        rng.shuffle(&mut shuffled);
        let assignment = assign_lpt(&shuffled, nodes);
        let loads: Vec<f64> = assignment.iter().map(|a| a.load).collect();
        let mean = loads.iter().sum::<f64>() / nodes as f64;
        let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / nodes as f64;
        let placement: Vec<Vec<PartitionId>> =
            assignment.into_iter().map(|a| a.partitions).collect();
        if best.as_ref().map(|(bv, _)| var < *bv).unwrap_or(true) {
            best = Some((var, placement));
        }
    }
    best.expect("at least one candidate").1
}

/// Builds the §3.3 Manual-Heterogeneous cluster: `n` servers configured
/// per group profile, partitions grouped by declared access pattern and
/// LPT-balanced inside each group. Returns `(server ids, profile of each)`.
pub fn build_manual_heterogeneous(
    sim: &mut SimCluster,
    n: usize,
    groups: &[(ProfileKind, Vec<LoadedPartition>)],
) -> Vec<(ServerId, ProfileKind)> {
    let base = StoreConfig::default_homogeneous();
    let counts: BTreeMap<ProfileKind, usize> = groups.iter().map(|(k, v)| (*k, v.len())).collect();
    let alloc = nodes_per_group(&counts, n);
    let mut out = Vec::new();
    for (kind, node_count) in &alloc {
        let parts: Vec<LoadedPartition> =
            groups.iter().filter(|(k, _)| k == kind).flat_map(|(_, v)| v.iter().copied()).collect();
        let assignment = assign_lpt(&parts, *node_count);
        for node in assignment {
            let server = sim.add_server_immediate(kind.config(&base));
            for p in node.partitions {
                sim.assign_partition(p, server).expect("fresh server accepts partitions");
            }
            out.push((server, *kind));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{CostParams, ElasticCluster, PartitionSpec};

    fn sim_with_partitions(n: usize, seed: u64) -> (SimCluster, Vec<LoadedPartition>) {
        let mut sim = SimCluster::new(CostParams::default(), seed);
        let parts = (0..n)
            .map(|i| {
                let p = sim.create_partition(PartitionSpec {
                    table: "t".into(),
                    size_bytes: 1e9,
                    record_bytes: 1_000.0,
                    hot_set_fraction: 0.4,
                    hot_ops_fraction: 0.5,
                });
                // Paper-style skew: one hotspot, one intermediate, tails.
                let load = match i % 4 {
                    0 => 34.0,
                    1 => 26.0,
                    _ => 20.0,
                };
                (p, load)
            })
            .collect();
        (sim, parts)
    }

    #[test]
    fn random_homogeneous_uses_even_counts() {
        let (mut sim, parts) = sim_with_partitions(12, 1);
        build_random_homogeneous(&mut sim, 4);
        let snap = sim.snapshot();
        for s in &snap.servers {
            assert_eq!(s.partitions.len(), 3, "uneven counts");
        }
        let _ = parts;
    }

    #[test]
    fn manual_homogeneous_balances_load_better_than_worst_random() {
        let (mut sim, parts) = sim_with_partitions(16, 2);
        let mut rng = SimRng::new(9);
        build_manual_homogeneous(&mut sim, 4, &parts, &mut rng);
        let snap = sim.snapshot();
        // Load per node under the placement.
        let load_of = |pid: PartitionId| parts.iter().find(|(p, _)| *p == pid).unwrap().1;
        let loads: Vec<f64> =
            snap.servers.iter().map(|s| s.partitions.iter().map(|p| load_of(*p)).sum()).collect();
        let spread = loads.iter().cloned().fold(0.0_f64, f64::max)
            - loads.iter().cloned().fold(f64::INFINITY, f64::min);
        // 16 partitions averaging 25 load → 100 per node; the search should
        // land within a tight band.
        assert!(spread <= 20.0, "poorly balanced: {loads:?}");
    }

    #[test]
    fn manual_heterogeneous_allocates_profiles_proportionally() {
        let (mut sim, _) = sim_with_partitions(0, 3);
        // §3.3: read 4, write 5, read/write 8, scan 4 on 5 nodes.
        let mk = |sim: &mut SimCluster, n: usize, load: f64| -> Vec<LoadedPartition> {
            (0..n)
                .map(|_| {
                    (
                        sim.create_partition(PartitionSpec {
                            table: "t".into(),
                            size_bytes: 1e9,
                            record_bytes: 1_000.0,
                            hot_set_fraction: 0.4,
                            hot_ops_fraction: 0.5,
                        }),
                        load,
                    )
                })
                .collect()
        };
        let read = mk(&mut sim, 4, 25.0);
        let write = mk(&mut sim, 5, 25.0);
        let rw = mk(&mut sim, 8, 25.0);
        let scan = mk(&mut sim, 4, 25.0);
        let servers = build_manual_heterogeneous(
            &mut sim,
            5,
            &[
                (ProfileKind::Read, read),
                (ProfileKind::Write, write),
                (ProfileKind::ReadWrite, rw),
                (ProfileKind::Scan, scan),
            ],
        );
        assert_eq!(servers.len(), 5);
        let rw_nodes: Vec<_> =
            servers.iter().filter(|(_, k)| *k == ProfileKind::ReadWrite).collect();
        assert_eq!(rw_nodes.len(), 2, "read/write group must get 2 of 5 nodes");
        // Each read/write node holds 4 of the 8 mixed partitions.
        let snap = sim.snapshot();
        for (server, _) in rw_nodes {
            let s = snap.server(*server).unwrap();
            assert_eq!(s.partitions.len(), 4);
        }
        // Node configs match their profiles.
        for (server, kind) in &servers {
            let cfg = &snap.server(*server).unwrap().config;
            assert_eq!(ProfileKind::of_config(cfg), Some(*kind));
        }
    }
}
