//! Offline stand-in for `proptest`.
//!
//! Implements randomized (not shrinking) property testing with the API
//! surface the workspace's `tests/prop_*.rs` files use: the [`Strategy`]
//! trait with `prop_map`, range/`any`/[`Just`]/tuple strategies,
//! [`collection::vec`] and [`collection::btree_set`], the
//! [`proptest!`]/[`prop_oneof!`]/[`prop_assert!`]/[`prop_assert_eq!`]
//! macros, and [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test seed, so failures are reproducible; there is no
//! shrinking — a failing case panics with its case number.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type for explicit early returns from property bodies
/// (`return Ok(())`). Assertion macros panic instead of constructing it.
#[derive(Debug)]
pub struct TestCaseError;

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("test case error")
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes this strategy for use in heterogeneous unions.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for the full domain of a type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Produces arbitrary values covering `T`'s whole domain.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-varied values; the tests only need coverage, not
        // NaN/Inf edge cases.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over the given alternatives.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Ordered sets whose size is drawn from `size`. If the element domain
    /// is too small to reach the drawn size, insertion attempts are
    /// bounded and the set may come out smaller (but never below one
    /// element when `size.start >= 1`).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let want = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want.saturating_mul(64) + 256 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Re-export so `use proptest::prelude::*` provides everything the tests
/// name, including the `prop::` module path.
pub mod prelude {
    /// `prop::collection::vec(..)` etc. resolve through this alias.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Seed derived from the test name so every test gets a distinct,
/// reproducible stream.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms (unlike DefaultHasher's
    // unspecified algorithm).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines `#[test]` functions over generated inputs; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        #[test]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $(#[$meta])* #[test] $($rest)*);
    };
    (@tests ($config:expr)) => {};
    (@tests ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {} case {case} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

// Self-checks exercise the same macro surface the workspace tests use.
#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet as StdBTreeSet;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8, Vec<u8>),
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16))
                .prop_map(|(k, v)| Op::Put(k, v)),
            Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(
            x in 3u64..9,
            y in 0.5f64..2.0,
            n in 1usize..5,
            ops in prop::collection::vec(op_strategy(), 1..20),
            set in prop::collection::btree_set(0u8..200, 2..30),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.0).contains(&y), "y out of range: {y}");
            prop_assert!((1..5).contains(&n));
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            prop_assert!(set.len() >= 2, "set too small: {}", set.len());
            if x == u64::MAX {
                return Ok(()); // exercise the early-return path
            }
            prop_assert_eq!(x + 1, x + 1);
        }
    }

    #[test]
    fn determinism() {
        let strat = prop::collection::btree_set(0u8..50, 5..10);
        let a: StdBTreeSet<u8> = crate::Strategy::generate(&strat, &mut crate::TestRng::new(7));
        let b: StdBTreeSet<u8> = crate::Strategy::generate(&strat, &mut crate::TestRng::new(7));
        assert_eq!(a, b);
    }
}
