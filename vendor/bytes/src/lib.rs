//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is a reference-counted immutable byte buffer. Clones
//! share the allocation (like the real crate); there is no zero-copy
//! slicing because the workspace never slices.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
        assert!(Bytes::new().is_empty());
        assert!(a < Bytes::from_static(b"abd"));
    }
}
