//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait *names* plus the derive
//! macro re-exports so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Nothing in the
//! workspace serializes through serde's data model — JSON goes through the
//! vendored `serde_json` value layer instead — so the traits are empty
//! markers and the derives are no-ops.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Sized {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
