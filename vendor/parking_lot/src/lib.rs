//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()` returns the guard directly, recovering from poisoning
//! by taking the inner data as-is.

#![warn(missing_docs)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
