//! Offline stand-in for the `rayon` crate.
//!
//! The real rayon is a work-stealing fork/join scheduler; this stand-in is a
//! much smaller work-*sharing* pool that covers exactly the subset of the API
//! this workspace uses:
//!
//! * [`ThreadPoolBuilder::build_global`] — sizes (and lazily grows) one global
//!   pool of persistent worker threads;
//! * [`current_num_threads`];
//! * [`prelude::IntoParallelRefIterator`] — `slice.par_iter().map(f).collect
//!   ::<Vec<_>>()`, order-preserving;
//! * [`prelude::IntoParallelRefMutIterator`] — `slice.par_iter_mut()
//!   .for_each(f)`.
//!
//! Work is distributed by an atomic index shared between the workers and the
//! calling thread (the caller participates, so a pool of size 1 still makes
//! progress even if no worker ever wakes). The caller blocks until every item
//! of its batch has completed, which is what makes the lifetime-erased closure
//! pointer below sound: the closure cannot be dropped while any thread still
//! holds the pointer. Panics inside items are caught, counted as completed so
//! the batch can finish, and re-raised on the calling thread.
//!
//! Nested parallel calls from inside a worker run sequentially on that worker
//! (the real rayon would split the job further; for the deterministic
//! simulation workload in this repo the nesting case is cold and sequential
//! execution is both simpler and obviously sound).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One submitted parallel batch: `len` items, each run as `f(index)`.
///
/// `f` is a lifetime-erased raw pointer to the caller's closure. The caller
/// guarantees it outlives the batch by blocking until `completed == len`.
struct BatchState {
    f: *const (dyn Fn(usize) + Sync + 'static),
    len: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `f` points at a `Sync` closure kept alive by the submitting thread
// for the whole batch; all counters are atomics.
unsafe impl Send for BatchState {}
unsafe impl Sync for BatchState {}

impl BatchState {
    /// Claims and runs items until the index range is exhausted. Returns the
    /// number of items this thread completed.
    fn work(&self) -> usize {
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return ran;
            }
            // SAFETY: the submitting thread keeps the closure alive until
            // `completed == len`, and `i < len` is claimed exactly once.
            let f = unsafe { &*self.f };
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            ran += 1;
            // Every claimed item counts as completed (even on panic) so the
            // caller's wait below can always terminate.
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.len {
                let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every item has completed.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Shared queue the persistent workers pull batches from.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<BatchState>>>,
    queue_cv: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    /// Number of worker threads spawned so far (excludes callers).
    workers: Mutex<usize>,
    /// Requested pool size; `build_global` only ever grows it.
    desired: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        }),
        workers: Mutex::new(0),
        desired: AtomicUsize::new(0),
    })
}

thread_local! {
    /// True on pool worker threads; nested parallel calls detect this and run
    /// sequentially instead of deadlocking on their own batch.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker_main(shared: Arc<PoolShared>) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(b) = q.front() {
                    if b.next.load(Ordering::Relaxed) < b.len {
                        break q.front().cloned();
                    }
                    q.pop_front();
                    continue;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(b) = batch {
            b.work();
        }
    }
}

/// Ensures at least `n - 1` persistent workers exist (the caller is the n-th
/// participant of any batch it submits).
fn ensure_workers(n: usize) {
    let p = pool();
    let want = n.saturating_sub(1);
    let mut count = p.workers.lock().unwrap_or_else(|e| e.into_inner());
    while *count < want {
        let shared = Arc::clone(&p.shared);
        std::thread::Builder::new()
            .name(format!("rayon-standin-{}", *count))
            .spawn(move || worker_main(shared))
            .expect("spawn pool worker");
        *count += 1;
    }
}

/// Runs `f(0..len)` across the pool, blocking until every item completes.
///
/// Falls back to a plain sequential loop when the pool has a single
/// participant, the batch is trivially small, or we are already on a worker
/// thread (nested call).
pub fn execute(len: usize, f: &(dyn Fn(usize) + Sync)) {
    if len == 0 {
        return;
    }
    let threads = current_num_threads();
    if threads <= 1 || len == 1 || IS_WORKER.with(|w| w.get()) {
        for i in 0..len {
            f(i);
        }
        return;
    }
    ensure_workers(threads.min(len));
    // SAFETY: the lifetime is erased to fit the queue; soundness comes from
    // this function blocking until `completed == len` before returning, so
    // no thread can observe the pointer after the closure's real lifetime.
    let f_erased: *const (dyn Fn(usize) + Sync + 'static) =
        unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
    let batch = Arc::new(BatchState {
        f: f_erased,
        len,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let p = pool();
        let mut q = p.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(Arc::clone(&batch));
        p.shared.queue_cv.notify_all();
    }
    // The caller works too; this guarantees progress even if workers are busy.
    batch.work();
    batch.wait();
    if batch.panicked.load(Ordering::Relaxed) {
        panic!("a parallel task panicked");
    }
}

/// Number of threads parallel batches are spread over (including the caller).
pub fn current_num_threads() -> usize {
    let d = pool().desired.load(Ordering::Relaxed);
    if d == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        d
    }
}

/// Error type returned by [`ThreadPoolBuilder::build_global`].
///
/// The stand-in never actually fails to (re)configure the global pool — it
/// grows to the maximum size ever requested — so this is only here for API
/// compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global pool; mirrors rayon's `ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `num` participant threads (0 = auto-detect).
    pub fn num_threads(mut self, num: usize) -> Self {
        self.num_threads = num;
        self
    }

    /// Applies the configuration to the global pool.
    ///
    /// Unlike real rayon this can be called repeatedly; the pool keeps the
    /// largest size ever requested (persistent workers are never torn down).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        let p = pool();
        p.desired.fetch_max(n, Ordering::Relaxed);
        ensure_workers(p.desired.load(Ordering::Relaxed));
        Ok(())
    }
}

/// Order-preserving parallel map + the terminal adapters used in-tree.
pub mod iter {
    use super::execute;

    /// Parallel view over `&[T]`, produced by `par_iter()`.
    pub struct ParIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps every element through `f` (in parallel, order preserved).
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParMap { slice: self.slice, f }
        }

        /// Runs `f` on every element.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync,
        {
            let slice = self.slice;
            execute(slice.len(), &|i| f(&slice[i]));
        }
    }

    /// Lazy parallel map, consumed by [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    impl<'a, T, R, F> ParMap<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        /// Runs the map and collects results in input order.
        ///
        /// Only `Vec<R>` is supported (`C: FromParVec`), which is the only
        /// collector the workspace uses.
        pub fn collect<C: FromParVec<R>>(self) -> C {
            let len = self.slice.len();
            let mut out: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(len);
            // SAFETY: MaybeUninit needs no initialization; every slot is
            // written exactly once below before assume-init.
            unsafe { out.set_len(len) };
            let out_ptr = SendPtr(out.as_mut_ptr());
            let slice = self.slice;
            let f = &self.f;
            execute(len, &|i| {
                let v = f(&slice[i]);
                // SAFETY: each index is claimed by exactly one thread, and the
                // buffer outlives `execute` (the caller blocks in it).
                unsafe { out_ptr.at(i).write(std::mem::MaybeUninit::new(v)) };
            });
            // SAFETY: all `len` slots were written (execute returns only after
            // every item completed; a panic propagates before reaching here).
            let vec = unsafe {
                let mut out = std::mem::ManuallyDrop::new(out);
                Vec::from_raw_parts(out.as_mut_ptr() as *mut R, len, out.capacity())
            };
            C::from_par_vec(vec)
        }
    }

    /// Collector bound for [`ParMap::collect`].
    pub trait FromParVec<R> {
        /// Builds the collection from the in-order mapped results.
        fn from_par_vec(v: Vec<R>) -> Self;
    }

    impl<R> FromParVec<R> for Vec<R> {
        fn from_par_vec(v: Vec<R>) -> Self {
            v
        }
    }

    /// Parallel view over `&mut [T]`, produced by `par_iter_mut()`.
    pub struct ParIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<T: Send> ParIterMut<'_, T> {
        /// Runs `f` on every element (disjoint `&mut` access per index).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            let len = self.slice.len();
            let base = SendPtr(self.slice.as_mut_ptr());
            execute(len, &|i| {
                // SAFETY: indices are claimed exactly once, so each element
                // gets a unique `&mut` for the duration of its item.
                let elem = unsafe { &mut *base.at(i) };
                f(elem);
            });
        }
    }

    /// Raw pointer wrapper so disjoint-index writes can cross threads.
    ///
    /// Accessed only through [`SendPtr::at`] so closures capture the wrapper
    /// (which is `Sync`) rather than the raw pointer field (which is not).
    struct SendPtr<P>(*mut P);
    unsafe impl<P: Send> Send for SendPtr<P> {}
    unsafe impl<P: Send> Sync for SendPtr<P> {}

    impl<P> SendPtr<P> {
        fn at(&self, i: usize) -> *mut P {
            // SAFETY: callers only pass indices within the originating
            // allocation, so the offset stays in bounds.
            unsafe { self.0.add(i) }
        }
    }

    pub(crate) fn par_iter<T>(slice: &[T]) -> ParIter<'_, T> {
        ParIter { slice }
    }

    pub(crate) fn par_iter_mut<T>(slice: &mut [T]) -> ParIterMut<'_, T> {
        ParIterMut { slice }
    }
}

/// The conventional `use rayon::prelude::*;` import surface.
pub mod prelude {
    use super::iter::{ParIter, ParIterMut};

    /// `.par_iter()` on shared slices/vectors.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type yielded by the parallel iterator.
        type Item: Sync + 'a;
        /// Returns an order-preserving parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            super::iter::par_iter(self)
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            super::iter::par_iter(self)
        }
    }

    /// `.par_iter_mut()` on exclusive slices/vectors.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type yielded by the parallel iterator.
        type Item: Send + 'a;
        /// Returns a parallel iterator of disjoint `&mut` element views.
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            super::iter::par_iter_mut(self)
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            super::iter::par_iter_mut(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        super::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_element_once() {
        super::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let count = AtomicUsize::new(0);
        let input: Vec<u32> = (0..5_000).collect();
        input.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5_000);
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        super::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let mut v: Vec<u64> = (0..5_000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..=5_000).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_sequentially() {
        super::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let outer: Vec<u32> = (0..64).collect();
        let sums: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u64> = (0..100u64).collect();
                let doubled: Vec<u64> = inner.par_iter().map(|x| x + o as u64).collect();
                doubled.iter().sum()
            })
            .collect();
        for (o, s) in sums.iter().enumerate() {
            assert_eq!(*s, (0..100u64).map(|x| x + o as u64).sum::<u64>());
        }
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        super::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let input: Vec<u32> = (0..256).collect();
        let r = std::panic::catch_unwind(|| {
            input.par_iter().for_each(|&x| {
                if x == 123 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err(), "panic inside a batch must re-raise on the caller");
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
