//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the trait surface the workspace consumes:
//! [`RngCore`], [`SeedableRng`] and [`Error`]. All randomness in the
//! workspace comes from `simcore::SimRng` (SplitMix64); these traits only
//! exist so that generic call sites and trait impls keep compiling against
//! the canonical `rand` API.

#![warn(missing_docs)]

use std::fmt;

/// Error type reported by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this type
/// is never constructed in practice — it exists to satisfy the
/// `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`fill_bytes`](RngCore::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator constructible from a fixed seed (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed value type.
    type Seed;
    /// Builds the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = u64;
        fn from_seed(seed: u64) -> Self {
            Counter(seed)
        }
    }

    #[test]
    fn default_try_fill_bytes_delegates() {
        let mut rng = Counter::from_seed(0);
        let mut buf = [0u8; 12];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_ne!(buf, [0u8; 12]);
    }
}
