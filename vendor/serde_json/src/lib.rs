//! Offline stand-in for `serde_json`.
//!
//! A self-contained JSON layer covering the slice of the `serde_json` API
//! the workspace uses: the [`Value`] tree, [`from_str`] parsing,
//! [`to_string`]/[`to_string_pretty`] printing, the [`json!`] macro, and
//! [`to_value`] conversion from common Rust types via the [`ToJson`]
//! trait. It does not go through serde's `Serialize` data model — the
//! workspace's derives are no-ops — so conversions are `ToJson` impls.
//!
//! Numbers are stored as `f64`, which is exact for every integer the
//! experiment reports emit (|n| < 2^53) and round-trips the decimal
//! fractions the reports use.

// The `json!` macro builds arrays by pushing, matching upstream's
// expansion; the lint would rewrite the macro's shape, not real code.
#![allow(clippy::vec_init_then_push)]
#![warn(missing_docs)]

mod parse;
mod print;
mod value;

pub use parse::{from_str, Error};
pub use print::{to_string, to_string_pretty};
pub use value::{to_value, Map, ToJson, Value};

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports object/array literals, `null`/`true`/`false`, and arbitrary
/// Rust expressions (converted via [`ToJson`]) in value position:
///
/// ```
/// let v = serde_json::json!({"answer": 42, "curve": [1.0, 2.5], "nested": {"ok": true}});
/// assert_eq!(v["answer"], 42);
/// ```
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@array array $($tt)*);
        $crate::Value::Array(array)
    }};

    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object $($tt)*);
        $crate::Value::Object(object)
    }};

    ($other:expr) => { $crate::to_value(&$other) };

    // ---- array elements -------------------------------------------------
    (@array $array:ident) => {};
    (@array $array:ident null $($rest:tt)*) => {
        $array.push($crate::Value::Null);
        $crate::json_internal!(@array_rest $array $($rest)*);
    };
    (@array $array:ident [ $($elem:tt)* ] $($rest:tt)*) => {
        $array.push($crate::json_internal!([ $($elem)* ]));
        $crate::json_internal!(@array_rest $array $($rest)*);
    };
    (@array $array:ident { $($map:tt)* } $($rest:tt)*) => {
        $array.push($crate::json_internal!({ $($map)* }));
        $crate::json_internal!(@array_rest $array $($rest)*);
    };
    (@array $array:ident $value:expr , $($rest:tt)*) => {
        $array.push($crate::to_value(&$value));
        $crate::json_internal!(@array $array $($rest)*);
    };
    (@array $array:ident $value:expr) => {
        $array.push($crate::to_value(&$value));
    };
    (@array_rest $array:ident) => {};
    (@array_rest $array:ident , $($rest:tt)*) => {
        $crate::json_internal!(@array $array $($rest)*);
    };

    // ---- object entries -------------------------------------------------
    (@object $object:ident) => {};
    (@object $object:ident $key:literal : null $($rest:tt)*) => {
        $object.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal!(@object_rest $object $($rest)*);
    };
    (@object $object:ident $key:literal : [ $($elem:tt)* ] $($rest:tt)*) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!([ $($elem)* ]));
        $crate::json_internal!(@object_rest $object $($rest)*);
    };
    (@object $object:ident $key:literal : { $($map:tt)* } $($rest:tt)*) => {
        $object.insert(::std::string::String::from($key), $crate::json_internal!({ $($map)* }));
        $crate::json_internal!(@object_rest $object $($rest)*);
    };
    (@object $object:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $object.insert(::std::string::String::from($key), $crate::to_value(&$value));
        $crate::json_internal!(@object $object $($rest)*);
    };
    (@object $object:ident $key:literal : $value:expr) => {
        $object.insert(::std::string::String::from($key), $crate::to_value(&$value));
    };
    (@object_rest $object:ident) => {};
    (@object_rest $object:ident , $($rest:tt)*) => {
        $crate::json_internal!(@object $object $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_structures() {
        let curve = vec![(1.0f64, 2.0f64)];
        let v = json!({
            "experiment": "unit",
            "count": 3,
            "nested": {"gain": 0.31, "flag": true, "missing": null},
            "list": [1, 2.5, "s"],
            "pairs": curve,
        });
        assert_eq!(v["experiment"], "unit");
        assert_eq!(v["count"], 3);
        assert_eq!(v["nested"]["gain"], 0.31);
        assert_eq!(v["nested"]["flag"], true);
        assert!(v["nested"]["missing"].is_null());
        assert_eq!(v["list"][1], 2.5);
        assert_eq!(v["pairs"][0][0], 1.0);
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({"a": [1, 2, 3], "b": {"c": "x\"y", "d": -1.5}, "e": null});
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let parsed = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn option_and_map_conversions() {
        use std::collections::BTreeMap;
        let some: Option<f64> = Some(4.0);
        let none: Option<f64> = None;
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 7u64);
        let v = json!({"some": some, "none": none, "map": m});
        assert_eq!(v["some"], 4.0);
        assert!(v["none"].is_null());
        assert_eq!(v["map"]["k"], 7);
    }
}
