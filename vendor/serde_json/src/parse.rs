//! A recursive-descent JSON parser.

use crate::value::{Map, Value};
use std::fmt;

/// Parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
