//! Compact and pretty JSON printers.

use crate::value::Value;

/// Serializes a value to compact JSON. Infallible in practice; the
/// `Result` mirrors the `serde_json` signature.
pub fn to_string(value: &Value) -> Result<String, crate::Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, crate::Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

/// Writes a number the way `serde_json` renders it: integers without a
/// fractional part, everything else via the shortest `f64` display.
pub(crate) fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; degrade to null like serde_json's
        // arbitrary-precision-off behaviour degrades to error.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

pub(crate) fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}
