//! The JSON value tree and conversions into it.

use std::collections::BTreeMap;
use std::ops::Index;

/// Object representation: key-ordered, like `serde_json`'s
/// `preserve_order`-off default.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup returning `None` instead of `Null` on absence.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_num {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Conversion into a [`Value`] — the stand-in for serializing through
/// serde's data model.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

/// Converts any [`ToJson`] type into a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! to_json_num {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

to_json_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

macro_rules! to_json_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}

to_json_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<K: AsRef<str>, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_json())).collect())
    }
}

impl<K: AsRef<str>, V: ToJson> ToJson for std::collections::HashMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_json())).collect())
    }
}
