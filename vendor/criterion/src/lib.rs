//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! sampling it runs each routine a small fixed number of times and
//! reports the mean wall-clock duration, so `cargo bench` still smoke-runs
//! every benchmark quickly and deterministically.

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.as_ref().to_string(), _criterion: self }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id.as_ref(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time limits.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id.as_ref(), &mut f);
        self
    }

    /// Ends the group. No-op in the stub.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut bencher = Bencher { iterations: 0, elapsed: std::time::Duration::ZERO };
    f(&mut bencher);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let per_iter = bencher.elapsed.checked_div(bencher.iterations.max(1)).unwrap_or_default();
    println!("bench {label:<48} {per_iter:>12?}/iter ({} iters)", bencher.iterations);
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u32,
    elapsed: std::time::Duration,
}

/// How `iter_batched` amortizes setup cost. The stub treats all variants
/// alike.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    LargeInput,
    /// Inputs too large to batch.
    PerIteration,
}

const STUB_ITERS: u32 = 3;

impl Bencher {
    /// Times `routine` over a small fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..STUB_ITERS {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iterations += 1;
            drop(out);
        }
    }

    /// Times `routine` on fresh input from `setup` each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..STUB_ITERS {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            self.iterations += 1;
            drop(out);
        }
    }
}

/// Collects benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
