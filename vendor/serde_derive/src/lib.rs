//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many config and
//! metric types but never serializes them through serde — all JSON output
//! goes through the vendored `serde_json` value layer or the telemetry
//! crate's hand-rolled JSONL encoder. These derives therefore expand to
//! nothing: they accept the usual `#[serde(...)]` helper attributes and
//! emit an empty token stream, keeping every `#[derive(Serialize)]`
//! annotation compiling without a network-fetched proc-macro stack.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
