//! MeT as an elastic resource manager on a simulated OpenStack cloud
//! (§6.4 of the paper), side by side with the tiramola baseline: a
//! 25-minute slice of the Figure 6 experiment showing scale-out under
//! overload.
//!
//! For the full 60-minute experiment with both phases run
//! `cargo run --release -p met-bench --bin exp-fig6`.
//!
//! Run with: `cargo run --release --example elastic_cloud`

use met_bench::elastic::{run_one, Controller};
use simcore::SimTime;

fn main() {
    println!("Overloaded 6-node cluster on 3 GB VMs; boot delay 60 s; quota 14.");
    let met = run_one(Controller::Met, 2_024);
    let tira = run_one(Controller::Tiramola, 2_024);

    println!(
        "\n{:>5} | {:>10} {:>6} | {:>10} {:>6}",
        "min", "MeT ops/s", "nodes", "tira ops/s", "nodes"
    );
    for m in (0..=24u64).step_by(2) {
        let t = SimTime::from_mins(m);
        println!(
            "{:>5} | {:>10.0} {:>6.0} | {:>10.0} {:>6.0}",
            m,
            met.throughput.resample_avg(60_000).value_at(t).unwrap_or(0.0),
            met.nodes.value_at(t).unwrap_or(6.0),
            tira.throughput.resample_avg(60_000).value_at(t).unwrap_or(0.0),
            tira.nodes.value_at(t).unwrap_or(6.0),
        );
    }
    println!(
        "\nMeT reconfigures heterogeneously while scaling (nodes arrive with the\n\
         right Table-1 profile and a balanced partition set); tiramola adds\n\
         identical nodes and leaves placement to HBase's count balancer, so its\n\
         extra machines serve remote, cache-cold data (§6.4)."
    );
}
