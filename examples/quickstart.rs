//! Quickstart: the two layers of the MeT reproduction in five minutes.
//!
//! 1. The *functional* layer — a real distributed HBase-like store: create
//!    a pre-split table, write, read and scan real data.
//! 2. The *simulation* layer — the cluster model the paper's experiments
//!    run on: attach the MeT control plane and watch it classify
//!    partitions, pick Table-1 profiles and reconfigure the cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use cluster::functional::FunctionalCluster;
use cluster::{ClientGroup, CostParams, ElasticCluster, OpMix, PartitionSpec, SimCluster};
use hstore::{Family, StoreConfig};
use met::{Met, MetConfig, ProfileKind};

fn functional_demo() {
    println!("== functional layer: a real distributed key-value store ==");
    let mut db = FunctionalCluster::new(42);
    for _ in 0..3 {
        db.add_server(StoreConfig::small_for_tests()).expect("valid config");
    }
    let fam = Family::from("profile");
    db.create_table("users", std::slice::from_ref(&fam), &["user400".into(), "user800".into()])
        .expect("fresh table");

    for i in 0..1_200 {
        db.put(
            "users",
            &fam,
            format!("user{i:04}").as_str().into(),
            "name".into(),
            format!("name-{i}").into_bytes().into(),
        )
        .expect("write routed");
    }
    let got = db
        .get("users", &fam, &"user0042".into(), &"name".into())
        .expect("read routed")
        .expect("present");
    println!("point read user0042 → {}", String::from_utf8_lossy(&got));

    let rows = db.scan("users", &fam, &"user0795".into(), 10).expect("scan routed");
    println!(
        "scan from user0795 crossed a region boundary and returned {} rows ({} .. {})",
        rows.len(),
        rows.first().map(|(k, _)| k.to_string()).unwrap_or_default(),
        rows.last().map(|(k, _)| k.to_string()).unwrap_or_default(),
    );
    for rid in db.table_regions("users") {
        println!(
            "  {} on {:?}: {:?} requests",
            rid,
            db.region_server(rid).expect("assigned"),
            db.region_counters(rid).expect("counters"),
        );
    }
}

fn met_demo() {
    println!("\n== simulation layer: MeT reconfiguring a cluster ==");
    let mut sim = SimCluster::new(CostParams::default(), 7);
    for _ in 0..3 {
        sim.add_server_immediate(StoreConfig::default_homogeneous());
    }
    // Three tenants with very different access patterns.
    let mut parts = Vec::new();
    for _ in 0..9 {
        parts.push(sim.create_partition(PartitionSpec {
            table: "t".into(),
            size_bytes: 1e9,
            record_bytes: 1_000.0,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
        }));
    }
    sim.random_balance_unassigned();
    let third = |o: usize| (0..3).map(|i| (parts[o + i], 1.0 / 3.0)).collect();
    sim.add_group(ClientGroup::with_common_weights(
        "readers",
        60.0,
        0.5,
        None,
        OpMix::read_only(),
        third(0),
        1.0,
        0.0,
    ));
    sim.add_group(ClientGroup::with_common_weights(
        "writers",
        60.0,
        0.5,
        None,
        OpMix::write_only(),
        third(3),
        1.0,
        0.1,
    ));
    sim.add_group(ClientGroup::with_common_weights(
        "mixed",
        60.0,
        0.5,
        None,
        OpMix::new(0.5, 0.5, 0.0),
        third(6),
        1.0,
        0.0,
    ));

    let mut met = Met::new(
        MetConfig { allow_scaling: false, ..MetConfig::default() },
        StoreConfig::default_homogeneous(),
    );
    for minute in 0..12 {
        for _ in 0..60 {
            sim.step();
            met.tick(&mut sim);
        }
        let snap = sim.snapshot();
        let profiles: Vec<String> = snap
            .servers
            .iter()
            .map(|s| {
                format!(
                    "{}={}",
                    s.server,
                    ProfileKind::of_config(&s.config)
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "homogeneous".into())
                )
            })
            .collect();
        println!(
            "minute {:>2}: {:>6.0} ops/s  [{}]",
            minute + 1,
            snap.total_rps(),
            profiles.join(", ")
        );
    }
    println!("\nMeT's actions:");
    for e in met.events() {
        println!("  {} {}", e.at, e.what);
    }
}

fn main() {
    functional_demo();
    met_demo();
}
