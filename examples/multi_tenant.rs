//! The §3 motivation experiment in miniature: six multi-tenant YCSB
//! workloads on five RegionServers under the three placement/configuration
//! strategies, eight simulated minutes each.
//!
//! For the full Figure 1 (5 × 32-minute runs per strategy with percentile
//! bars) run `cargo run --release -p met-bench --bin exp-fig1`.
//!
//! Run with: `cargo run --release --example multi_tenant`

use met_bench::fig1::{run_once, Strategy};

fn main() {
    println!("Six YCSB tenants (A–F, §3.1 of the paper) on 5 RegionServers");
    println!("{:-<78}", "");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "strategy", "A", "B", "C", "D", "E", "F", "Total"
    );
    let mut totals = Vec::new();
    for strategy in Strategy::ALL {
        let run = run_once(strategy, 2_024, 8);
        print!("{:<22}", strategy.label());
        for w in ["A", "B", "C", "D", "E", "F"] {
            print!(" {:>7.0}", run.per_workload[w]);
        }
        println!(" {:>8.0}", run.total);
        totals.push((strategy.label(), run.total));
    }
    println!("{:-<78}", "");
    let het = totals.iter().find(|(l, _)| l.contains("Heterogeneous")).expect("ran").1;
    for (label, total) in &totals {
        if !label.contains("Heterogeneous") {
            println!("Manual-Heterogeneous vs {label}: {:.2}x", het / total);
        }
    }
    println!(
        "\nThe heterogeneous cluster wins because WorkloadC's hot set owns a read\n\
         node's entire cache, WorkloadE's scans stop churning everyone else's\n\
         cache, and the write workloads' flush traffic is isolated (§3.4)."
    );
}
