//! TPC-C on the MeT reproduction, both ways (§6.3 of the paper):
//!
//! 1. *Functionally*: load a small TPC-C database onto real regions and run
//!    the five transactions with record-level atomicity, checking money
//!    conservation.
//! 2. *At experiment scale*: a 12-minute slice of the Table 2 comparison —
//!    the manual homogeneous configuration versus MeT reconfiguring it.
//!
//! For the full 45-minute Table 2 run:
//! `cargo run --release -p met-bench --bin exp-table2`.
//!
//! Run with: `cargo run --release --example tpcc_run`

use cluster::functional::FunctionalCluster;
use hstore::StoreConfig;
use met_bench::table2;
use tpcc::{loader, Table, TpccScale, TxnExecutor};

fn functional_demo() {
    println!("== functional TPC-C: real transactions on real regions ==");
    let mut db = FunctionalCluster::new(7);
    for _ in 0..3 {
        db.add_server(StoreConfig::small_for_tests()).expect("valid config");
    }
    let scale = TpccScale::tiny();
    let rows = loader::load(&mut db, &scale, 7).expect("load succeeds");
    println!("loaded {rows} rows across {} tables", Table::ALL.len());

    let mut exec = TxnExecutor::new(scale, 7);
    let counts = exec.run(&mut db, 500).expect("transactions run");
    println!("ran {} transactions: {counts:?}", counts.total());

    // Record-level consistency check: warehouse YTD == district YTD.
    let fam = Table::family();
    let num = |v: bytes::Bytes| -> u64 {
        std::str::from_utf8(&v).ok().and_then(|s| s.parse().ok()).unwrap_or(0)
    };
    let mut w_ytd = 0;
    let mut d_ytd = 0;
    for w in 1..=scale.warehouses {
        w_ytd += num(db
            .get(Table::Warehouse.name(), &fam, &tpcc::schema::keys::warehouse(w), &"W_YTD".into())
            .expect("routed")
            .expect("loaded"));
        for d in 1..=scale.districts_per_warehouse {
            d_ytd += num(db
                .get(
                    Table::District.name(),
                    &fam,
                    &tpcc::schema::keys::district(w, d),
                    &"D_YTD".into(),
                )
                .expect("routed")
                .expect("loaded"));
        }
    }
    assert_eq!(w_ytd, d_ytd, "payments must balance");
    println!("money conserved: warehouse YTD == district YTD == {w_ytd}");
}

fn sim_demo() {
    println!("\n== Table 2 slice: manual homogeneous vs MeT, 12 simulated minutes ==");
    let manual = table2::run_manual(2_024, 12);
    let (met, layout, reconfigs) = table2::run_met(2_024, 12);
    println!("manual homogeneous: {manual:>8.0} tpmC");
    println!("MeT (with overhead):{met:>8.0} tpmC  ({reconfigs} reconfiguration)");
    println!("MeT's layout:");
    for (profile, partitions) in &layout.nodes {
        println!("  {profile:<11} node with {} partitions", partitions.len());
    }
}

fn main() {
    functional_demo();
    sim_demo();
}
