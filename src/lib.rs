//! Umbrella crate for the MeT reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can use a
//! single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use baselines;
pub use cluster;
pub use dfs;
pub use hstore;
pub use iaas;
pub use met;
pub use simcore;
pub use tpcc;
pub use ycsb;
