//! Property-based tests of the storage engine: the LSM store is checked
//! against a reference model (a plain `BTreeMap`) under arbitrary
//! operation sequences, and structural invariants (cache capacity, split
//! partitioning) are checked under arbitrary inputs.

use bytes::Bytes;
use hstore::{
    BlockCache, BlockId, CfStore, FileId, FileIdAllocator, KeyRange, Region, RegionId,
    SharedBlockCache, StoreError,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// An operation against the store.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8, Vec<u8>),
    Delete(u8, u8),
    Get(u8, u8),
    Scan(u8, u8),
    Flush,
    CompactMinor,
    CompactMajor,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), prop::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(r, q, v)| Op::Put(r, q, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(r, q)| Op::Delete(r, q)),
        (any::<u8>(), any::<u8>()).prop_map(|(r, q)| Op::Get(r, q)),
        (any::<u8>(), 1u8..20).prop_map(|(r, n)| Op::Scan(r, n)),
        Just(Op::Flush),
        Just(Op::CompactMinor),
        Just(Op::CompactMajor),
    ]
}

fn row(r: u8) -> hstore::RowKey {
    format!("row{r:03}").as_str().into()
}

fn qual(q: u8) -> hstore::Qualifier {
    format!("q{:02}", q % 4).as_str().into()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LSM store agrees with a `BTreeMap` reference under any sequence
    /// of puts, deletes, gets, scans, flushes and compactions.
    #[test]
    fn store_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut store = CfStore::new(SharedBlockCache::new(1 << 18), FileIdAllocator::new(), 256);
        let mut model: BTreeMap<(hstore::RowKey, hstore::Qualifier), Bytes> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(r, q, v) => {
                    let v = Bytes::from(v);
                    store.put(row(r), qual(q), v.clone());
                    model.insert((row(r), qual(q)), v);
                }
                Op::Delete(r, q) => {
                    store.delete(row(r), qual(q));
                    model.remove(&(row(r), qual(q)));
                }
                Op::Get(r, q) => {
                    let got = store.get(&row(r), &qual(q));
                    let want = model.get(&(row(r), qual(q))).cloned();
                    prop_assert_eq!(got, want, "get(row{}, q{}) diverged", r, q % 4);
                }
                Op::Scan(r, n) => {
                    let got = store.scan(&row(r), n as usize);
                    // Reference: first n live rows at/after the start key.
                    let mut want_rows: Vec<hstore::RowKey> = model
                        .keys()
                        .filter(|(rk, _)| *rk >= row(r))
                        .map(|(rk, _)| rk.clone())
                        .collect();
                    want_rows.dedup();
                    want_rows.truncate(n as usize);
                    let got_rows: Vec<hstore::RowKey> =
                        got.iter().map(|(rk, _)| rk.clone()).collect();
                    prop_assert_eq!(&got_rows, &want_rows, "scan rows diverged");
                    // Every returned row carries exactly its live cells.
                    for (rk, cells) in &got {
                        let want_cells: Vec<(hstore::Qualifier, Bytes)> = model
                            .iter()
                            .filter(|((mr, _), _)| mr == rk)
                            .map(|((_, mq), v)| (mq.clone(), v.clone()))
                            .collect();
                        prop_assert_eq!(cells, &want_cells, "cells diverged for {}", rk);
                    }
                }
                Op::Flush => {
                    store.flush();
                }
                Op::CompactMinor => {
                    store.compact_minor(3);
                }
                Op::CompactMajor => {
                    store.compact_major();
                }
            }
        }
    }

    /// The block cache never exceeds its byte capacity and hit/miss counts
    /// add up, under arbitrary access sequences.
    #[test]
    fn block_cache_capacity_invariant(
        capacity in 64u64..4096,
        accesses in prop::collection::vec((0u64..20, 0u32..16, 16u64..512), 1..300),
    ) {
        let mut cache = BlockCache::new(capacity);
        for (file, index, size) in accesses {
            cache.touch(BlockId { file: FileId(file), index }, size);
            prop_assert!(
                cache.used_bytes() <= capacity,
                "cache over capacity: {} > {}",
                cache.used_bytes(),
                capacity
            );
        }
        let stats = cache.stats();
        prop_assert!(stats.hits + stats.misses >= 1);
        prop_assert!(stats.hit_ratio() >= 0.0 && stats.hit_ratio() <= 1.0);
    }

    /// Splitting a region at any interior row partitions the data exactly:
    /// every row lands in exactly one daughter, on the correct side.
    #[test]
    fn region_split_partitions_rows(
        rows in prop::collection::btree_set(0u8..200, 2..60),
        split_sel in 1usize..59,
    ) {
        let cache = SharedBlockCache::new(1 << 20);
        let ids = FileIdAllocator::new();
        let mut region = Region::new(
            RegionId(1),
            "t",
            KeyRange::all(),
            &["cf".into()],
            cache.clone(),
            ids.clone(),
            512,
            1 << 20,
        );
        let fam: hstore::Family = "cf".into();
        for r in &rows {
            region
                .put(&fam, row(*r), qual(0), Bytes::from(vec![*r]))
                .expect("row in open range");
        }
        region.flush_all();
        let rows: Vec<u8> = rows.into_iter().collect();
        // Pick an interior split point (not ≤ the first row).
        let mid_row = rows[split_sel.min(rows.len() - 1).max(1)];
        if mid_row == rows[0] {
            return Ok(()); // split at range start is rejected by design
        }
        let (lo, hi) = region
            .split(row(mid_row), RegionId(2), RegionId(3), cache, ids, 512)
            .expect("interior split point");
        for r in rows {
            let in_lo = lo.get(&fam, &row(r), &qual(0));
            let in_hi = hi.get(&fam, &row(r), &qual(0));
            if r < mid_row {
                prop_assert!(in_lo.expect("lo covers").is_some(), "row{r} lost from lo");
                prop_assert!(
                    matches!(in_hi, Err(StoreError::WrongRegion { .. })),
                    "row{r} readable from hi"
                );
            } else {
                prop_assert!(in_hi.expect("hi covers").is_some(), "row{r} lost from hi");
                prop_assert!(
                    matches!(in_lo, Err(StoreError::WrongRegion { .. })),
                    "row{r} readable from lo"
                );
            }
        }
    }

    /// Major compaction is semantically invisible: any read sequence sees
    /// the same values before and after, and file count drops to one.
    #[test]
    fn major_compaction_is_transparent(
        writes in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
        flush_every in 5usize..20,
    ) {
        let mut store = CfStore::new(SharedBlockCache::new(1 << 18), FileIdAllocator::new(), 256);
        for (i, (r, q, v)) in writes.iter().enumerate() {
            store.put(row(*r), qual(*q), Bytes::from(vec![*v]));
            if i % flush_every == 0 {
                store.flush();
            }
        }
        store.flush();
        let before: Vec<_> = writes
            .iter()
            .map(|(r, q, _)| store.get(&row(*r), &qual(*q)))
            .collect();
        store.compact_major();
        prop_assert!(store.file_count() <= 1);
        let after: Vec<_> = writes
            .iter()
            .map(|(r, q, _)| store.get(&row(*r), &qual(*q)))
            .collect();
        prop_assert_eq!(before, after);
    }
}
