//! Cross-crate integration: the full MeT pipeline (ycsb → cluster → met)
//! on the simulated cluster, end to end.

use cluster::admin::{ElasticCluster, ServerHealth};
use cluster::{CostParams, SimCluster};
use hstore::StoreConfig;
use met::{Met, MetConfig, ProfileKind};
use simcore::{SimRng, SimTime};
use ycsb::presets;

fn build_scenario(seed: u64) -> (SimCluster, Vec<ycsb::DeployedWorkload>) {
    let mut sim = SimCluster::new(CostParams::default(), seed);
    let mut rng = SimRng::new(seed);
    let deployments: Vec<ycsb::DeployedWorkload> =
        presets::paper_suite().iter().map(|w| ycsb::deploy(w, &mut sim, &mut rng)).collect();
    for _ in 0..5 {
        sim.add_server_immediate(StoreConfig::default_homogeneous());
    }
    sim.random_balance_unassigned();
    for d in &deployments {
        sim.add_group(d.client_group());
    }
    (sim, deployments)
}

#[test]
fn met_converges_to_a_heterogeneous_layout_and_improves_throughput() {
    let (mut sim, deployments) = build_scenario(31);
    // Baseline window.
    sim.run_ticks(300);
    let baseline = sim
        .total_series()
        .mean_between(SimTime::from_secs(180), SimTime::from_secs(300))
        .expect("baseline window");

    let cfg = MetConfig { allow_scaling: false, ..MetConfig::default() };
    let mut met = Met::new(cfg, StoreConfig::default_homogeneous());
    for _ in 0..(20 * 60) {
        sim.step();
        met.tick(&mut sim);
    }
    assert!(met.reconfigurations() >= 1, "MeT never acted: {:?}", met.events());

    // Every server ends on a Table 1 profile.
    let snap = sim.snapshot();
    for s in snap.servers.iter().filter(|s| s.health == ServerHealth::Online) {
        assert!(
            ProfileKind::of_config(&s.config).is_some(),
            "{} still homogeneous after reconfiguration",
            s.server
        );
    }

    // MeT's classification found the obvious groups: WorkloadC's partitions
    // live on a read node, WorkloadE's on a scan node.
    let server_profile = |p| {
        let sid = snap
            .partitions
            .iter()
            .find(|m| m.partition == p)
            .and_then(|m| m.assigned_to)
            .expect("assigned");
        ProfileKind::of_config(&snap.server(sid).expect("server").config).expect("profiled")
    };
    let c = deployments.iter().find(|d| d.spec.name == "C").expect("C deployed");
    for p in &c.partitions {
        assert_eq!(server_profile(*p), ProfileKind::Read, "C partition off the read node");
    }
    let e = deployments.iter().find(|d| d.spec.name == "E").expect("E deployed");
    for p in &e.partitions {
        assert_eq!(server_profile(*p), ProfileKind::Scan, "E partition off the scan node");
    }
    let b = deployments.iter().find(|d| d.spec.name == "B").expect("B deployed");
    for p in &b.partitions {
        assert_eq!(server_profile(*p), ProfileKind::Write, "B partition off the write node");
    }

    // And throughput improved materially over the random-homogeneous start.
    let end = sim.time();
    let steady =
        sim.total_series().mean_between(SimTime(end.0 - 5 * 60_000), end).expect("steady window");
    assert!(steady > baseline * 1.2, "no improvement: baseline {baseline:.0} → steady {steady:.0}");
}

#[test]
fn met_is_deterministic_per_seed() {
    let run = |seed| {
        let (mut sim, _) = build_scenario(seed);
        let cfg = MetConfig { allow_scaling: false, ..MetConfig::default() };
        let mut met = Met::new(cfg, StoreConfig::default_homogeneous());
        for _ in 0..600 {
            sim.step();
            met.tick(&mut sim);
        }
        sim.total_series().points().to_vec()
    };
    assert_eq!(run(5), run(5), "same seed must replay identically");
}

#[test]
fn monitor_counters_match_simulated_traffic() {
    let (mut sim, deployments) = build_scenario(17);
    sim.run_ticks(120);
    let snap = sim.snapshot();
    // WorkloadC generated only reads; its partitions must show zero writes.
    let c = deployments.iter().find(|d| d.spec.name == "C").expect("deployed");
    for p in &c.partitions {
        let m = snap.partitions.iter().find(|m| m.partition == *p).expect("known");
        assert_eq!(m.counters.writes, 0, "reads-only workload wrote");
        assert!(m.counters.reads > 0, "no reads recorded");
    }
    // WorkloadB only writes.
    let b = deployments.iter().find(|d| d.spec.name == "B").expect("deployed");
    for p in &b.partitions {
        let m = snap.partitions.iter().find(|m| m.partition == *p).expect("known");
        assert_eq!(m.counters.reads, 0, "write-only workload read");
        assert!(m.counters.writes > 0, "no writes recorded");
    }
    // WorkloadE mostly scans.
    let e = deployments.iter().find(|d| d.spec.name == "E").expect("deployed");
    let scans: u64 = e
        .partitions
        .iter()
        .map(|p| snap.partitions.iter().find(|m| m.partition == *p).expect("known").counters.scans)
        .sum();
    assert!(scans > 0, "no scans recorded for the scan workload");
}

#[test]
fn met_runs_from_a_properties_file() {
    // The §5 configuration path end to end: parse a properties file, build
    // MeT from it, and let it manage the cluster.
    let text = "
        # §6.1 values, faster decision cadence for the test
        met.monitor.interval.seconds = 30
        met.monitor.samples = 6
        met.threshold.suboptimal.nodes = 0.5
        met.classification.threshold = 0.6
        met.scaling.enabled = false
    ";
    let cfg = met::parse_properties(text).expect("valid properties");
    let (mut sim, _) = build_scenario(77);
    let mut met = Met::new(cfg, StoreConfig::default_homogeneous());
    for _ in 0..(8 * 60) {
        sim.step();
        met.tick(&mut sim);
    }
    assert!(met.reconfigurations() >= 1, "properties-configured MeT never acted");
    // Scaling was disabled: the fleet size is untouched.
    assert_eq!(sim.online_server_ids().len(), 5);
}
