//! Property-based tests of the cluster simulation's conservation laws and
//! the DFS invariants.

use cluster::{
    ClientGroup, CostParams, ElasticCluster, OpMix, PartitionId, PartitionSpec, SimCluster,
};
use dfs::{DataNodeId, DfsFileId, Namenode};
use hstore::StoreConfig;
use proptest::prelude::*;
use simcore::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: the operations charged to partition counters equal
    /// (within rounding) the throughput integrated over the run, and
    /// throughput never exceeds the closed-loop ceiling.
    #[test]
    fn ops_are_conserved_and_ceiling_holds(
        seed in any::<u64>(),
        servers in 1usize..5,
        partitions in 1usize..8,
        threads in 5.0f64..200.0,
        read_frac in 0.0f64..1.0,
    ) {
        let mut sim = SimCluster::new(CostParams::default(), seed);
        for _ in 0..servers {
            sim.add_server_immediate(StoreConfig::default_homogeneous());
        }
        let parts: Vec<PartitionId> = (0..partitions)
            .map(|_| sim.create_partition(PartitionSpec {
                table: "t".into(),
                size_bytes: 1e9,
                record_bytes: 1_000.0,
                hot_set_fraction: 0.4,
                hot_ops_fraction: 0.5,
            }))
            .collect();
        sim.random_balance_unassigned();
        let w = 1.0 / partitions as f64;
        let think_ms = 1.0;
        let mix = OpMix::new(read_frac, 1.0 - read_frac + 1e-9, 0.0);
        sim.add_group(ClientGroup::with_common_weights(
            "g", threads, think_ms, None, mix,
            parts.iter().map(|p| (*p, w)).collect(), 1.0, 0.0,
        ));
        let ticks = 60;
        sim.run_ticks(ticks);

        // Ceiling: a closed loop with `threads` clients cannot exceed
        // threads / think_time.
        let ceiling = threads / (think_ms / 1_000.0);
        for (_, x) in sim.total_series().points() {
            prop_assert!(*x <= ceiling * 1.01, "throughput {x} above ceiling {ceiling}");
        }

        // Conservation: counters ≈ integral of the series.
        let integral: f64 = sim.total_series().points().iter().map(|(_, x)| x).sum();
        let storage_ops_per_req = mix.read + mix.write + mix.scan;
        let snap = sim.snapshot();
        let counted: u64 = snap.partitions.iter().map(|p| p.counters.total()).sum();
        let expected = integral * storage_ops_per_req;
        prop_assert!(
            (counted as f64 - expected).abs() <= expected * 0.02 + ticks as f64,
            "counters {counted} vs integrated {expected:.0}"
        );
    }

    /// The DFS keeps its replication invariants under arbitrary sequences
    /// of file creations, deletions and decommissions.
    #[test]
    fn dfs_replication_invariants(
        seed in any::<u64>(),
        nodes in 3u64..8,
        actions in prop::collection::vec((0u8..10, any::<u64>()), 1..80),
    ) {
        let mut nn = Namenode::new(2, SimRng::new(seed));
        for i in 0..nodes {
            nn.add_datanode(DataNodeId(i));
        }
        let mut live_files: Vec<DfsFileId> = Vec::new();
        let mut live_nodes: Vec<DataNodeId> = (0..nodes).map(DataNodeId).collect();
        let mut next_file = 0u64;
        for (kind, arg) in actions {
            match kind {
                0..=5 => {
                    // Create from a random live node.
                    let writer = live_nodes[(arg % live_nodes.len() as u64) as usize];
                    let id = DfsFileId(next_file);
                    next_file += 1;
                    nn.create_file(id, 100 + arg % 900, writer).expect("create");
                    live_files.push(id);
                }
                6..=7 => {
                    if let Some(pos) = live_files.len().checked_sub(1) {
                        let idx = (arg as usize) % (pos + 1);
                        let id = live_files.swap_remove(idx);
                        nn.delete_file(id).expect("delete tracked file");
                    }
                }
                _ => {
                    // Decommission, keeping at least 2 nodes so rf=2 holds.
                    if live_nodes.len() > 2 {
                        let idx = (arg as usize) % live_nodes.len();
                        let node = live_nodes.swap_remove(idx);
                        nn.remove_datanode(node).expect("decommission");
                    }
                }
            }
            // Invariant: every live file keeps exactly rf replicas on live
            // nodes (rf capped by the cluster size).
            for id in &live_files {
                let reps = nn.replicas(*id).expect("live file");
                prop_assert_eq!(reps.len(), 2.min(live_nodes.len()), "file {} replicas", id);
                for r in &reps {
                    prop_assert!(live_nodes.contains(r), "replica on dead node {r}");
                }
            }
        }
    }

    /// Locality indices are always in [0, 1] and byte-weighted correctly.
    #[test]
    fn locality_is_a_valid_fraction(
        seed in any::<u64>(),
        sizes in prop::collection::vec(1u64..10_000, 1..20),
    ) {
        let mut nn = Namenode::new(2, SimRng::new(seed));
        for i in 0..4 {
            nn.add_datanode(DataNodeId(i));
        }
        let mut served = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let id = DfsFileId(i as u64);
            nn.create_file(id, *size, DataNodeId(i as u64 % 4)).expect("create");
            served.push((id, *size));
        }
        for n in 0..4 {
            let loc = nn.locality_index(DataNodeId(n), &served);
            prop_assert!((0.0..=1.0).contains(&loc), "locality {loc}");
        }
        // The writers' localities, byte-weighted, cover every byte at least
        // once (each file is local to its writer).
        let total: u64 = served.iter().map(|(_, s)| s).sum();
        let weighted: f64 = (0..4)
            .map(|n| nn.locality_index(DataNodeId(n), &served) * total as f64)
            .sum();
        prop_assert!(weighted >= total as f64 - 1e-6, "writers lost locality");
    }
}
