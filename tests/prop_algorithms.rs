//! Property-based tests of MeT's decision algorithms and the simulation
//! kernel's distributions.

use cluster::{PartitionId, ServerId};
use met::assignment::{assign_lpt, makespan};
use met::classify::{classify, PartitionRates};
use met::grouping::nodes_per_group;
use met::output::{compute_output, CurrentNode, SuggestedNode};
use met::ProfileKind;
use proptest::prelude::*;
use simcore::dist::{HotspotDist, KeyDistribution, ZipfianDist};
use simcore::smoothing::ExpSmoother;
use simcore::SimRng;
use std::collections::{BTreeMap, BTreeSet};

fn profile_strategy() -> impl Strategy<Value = ProfileKind> {
    prop_oneof![
        Just(ProfileKind::Read),
        Just(ProfileKind::Write),
        Just(ProfileKind::ReadWrite),
        Just(ProfileKind::Scan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LPT (Algorithm 2): every job assigned exactly once, the per-node
    /// count cap holds, and the makespan respects LPT's approximation
    /// bound against the trivial lower bound.
    #[test]
    fn lpt_assignment_invariants(
        loads in prop::collection::vec(1.0f64..1000.0, 1..40),
        nodes in 1usize..8,
    ) {
        let jobs: Vec<(usize, f64)> = loads.iter().copied().enumerate().collect();
        let out = assign_lpt(&jobs, nodes);
        prop_assert_eq!(out.len(), nodes);
        // Exactly-once assignment.
        let mut seen: Vec<usize> =
            out.iter().flat_map(|n| n.partitions.iter().copied()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>());
        // Count cap.
        let cap = jobs.len().div_ceil(nodes);
        for n in &out {
            prop_assert!(n.partitions.len() <= cap);
        }
        // Load accounting and approximation bound.
        let total: f64 = loads.iter().sum();
        let assigned: f64 = out.iter().map(|n| n.load).sum();
        prop_assert!((total - assigned).abs() < 1e-6);
        let lb = (total / nodes as f64).max(loads.iter().cloned().fold(0.0, f64::max));
        prop_assert!(makespan(&out) <= 2.0 * lb + 1e-9, "makespan {} vs lb {lb}", makespan(&out));
    }

    /// Grouping: allocations use every node, give at least one node to any
    /// surviving group, and are monotone in group size.
    #[test]
    fn grouping_invariants(
        read in 0usize..30,
        write in 0usize..30,
        rw in 0usize..30,
        scan in 0usize..30,
        nodes in 1usize..16,
    ) {
        let mut counts = BTreeMap::new();
        counts.insert(ProfileKind::Read, read);
        counts.insert(ProfileKind::Write, write);
        counts.insert(ProfileKind::ReadWrite, rw);
        counts.insert(ProfileKind::Scan, scan);
        let alloc = nodes_per_group(&counts, nodes);
        let total_parts = read + write + rw + scan;
        if total_parts == 0 {
            prop_assert!(alloc.is_empty());
            return Ok(());
        }
        let used: usize = alloc.values().sum();
        prop_assert_eq!(used, nodes, "must use every node");
        for n in alloc.values() {
            prop_assert!(*n >= 1);
        }
        // Proportionality sanity: a strictly larger group never receives
        // fewer nodes than a strictly smaller one (ties may order freely).
        let largest = counts.iter().filter(|(_, c)| **c > 0).max_by_key(|(_, c)| **c);
        let smallest = counts.iter().filter(|(_, c)| **c > 0).min_by_key(|(_, c)| **c);
        if let (Some((lk, lc)), Some((sk, sc))) = (largest, smallest) {
            if lc > sc {
                if let (Some(ln), Some(sn)) = (alloc.get(lk), alloc.get(sk)) {
                    prop_assert!(ln >= sn, "{lk}:{ln} < {sk}:{sn}");
                }
            }
        }
    }

    /// Classification is total and exclusive: every rate triple maps to
    /// exactly one group, and scaling all rates leaves the class unchanged.
    #[test]
    fn classification_total_and_scale_invariant(
        reads in 0.0f64..10_000.0,
        writes in 0.0f64..10_000.0,
        scans in 0.0f64..10_000.0,
        scale in 0.01f64..100.0,
    ) {
        let a = classify(PartitionRates { reads, writes, scans }, 0.6);
        let b = classify(
            PartitionRates { reads: reads * scale, writes: writes * scale, scans: scans * scale },
            0.6,
        );
        prop_assert_eq!(a, b, "classification must depend only on ratios");
    }

    /// Output computation (Algorithm 3): every suggested partition appears
    /// exactly once, decommissioned servers never appear in entries, and
    /// the matching never does worse (in moves) than the naive in-order
    /// assignment.
    #[test]
    fn output_computation_invariants(
        placements in prop::collection::vec((0u64..6, profile_strategy()), 1..24),
        suggested_shape in prop::collection::vec((profile_strategy(), 1usize..6), 1..8),
    ) {
        // Current: partitions i placed on server placements[i].0.
        let mut by_server: BTreeMap<u64, Vec<PartitionId>> = BTreeMap::new();
        for (i, (srv, _)) in placements.iter().enumerate() {
            by_server.entry(*srv).or_default().push(PartitionId(i as u64));
        }
        let current: Vec<CurrentNode> = by_server
            .iter()
            .map(|(srv, parts)| CurrentNode {
                server: ServerId(*srv),
                profile: placements.get(*srv as usize).map(|(_, p)| *p),
                partitions: parts.clone(),
            })
            .collect();
        // Suggested: carve the same partitions into slots.
        let all: Vec<PartitionId> = (0..placements.len() as u64).map(PartitionId).collect();
        let mut suggested = Vec::new();
        let mut cursor = 0usize;
        for (profile, width) in &suggested_shape {
            let end = (cursor + width).min(all.len());
            suggested.push(SuggestedNode {
                profile: *profile,
                partitions: all[cursor..end].to_vec(),
            });
            cursor = end;
        }
        if cursor < all.len() {
            suggested.push(SuggestedNode {
                profile: ProfileKind::ReadWrite,
                partitions: all[cursor..].to_vec(),
            });
        }
        let plan = compute_output(&current, suggested.clone(), false);

        // Exactly-once coverage of suggested partitions.
        let mut covered: Vec<u64> = plan
            .entries
            .iter()
            .flat_map(|(_, s)| s.partitions.iter().map(|p| p.0))
            .collect();
        covered.sort_unstable();
        let mut expected: Vec<u64> =
            suggested.iter().flat_map(|s| s.partitions.iter().map(|p| p.0)).collect();
        expected.sort_unstable();
        prop_assert_eq!(covered, expected);

        // Decommissioned servers do not also receive a slot.
        let slot_servers: BTreeSet<ServerId> =
            plan.entries.iter().filter_map(|(s, _)| *s).collect();
        for d in &plan.decommission {
            prop_assert!(!slot_servers.contains(d), "{d} both decommissioned and assigned");
        }
        // No server receives two slots.
        prop_assert_eq!(
            slot_servers.len(),
            plan.entries.iter().filter(|(s, _)| s.is_some()).count()
        );

        // Move count is bounded by the total partition count (each
        // partition moves at most once in a plan).
        prop_assert!(plan.moves_required(&current) <= placements.len());

        // The identity case needs no moves at all: re-suggesting exactly
        // the current layout (same sets, same profiles) is a no-op.
        let identity: Vec<SuggestedNode> = current
            .iter()
            .map(|c| SuggestedNode {
                profile: c.profile.unwrap_or(ProfileKind::ReadWrite),
                partitions: c.partitions.clone(),
            })
            .collect();
        let id_plan = compute_output(&current, identity, false);
        prop_assert_eq!(
            id_plan.moves_required(&current),
            0,
            "identity layout required moves"
        );
    }

    /// The hotspot distribution respects its bounds and its hot-set
    /// concentration under arbitrary parameters.
    #[test]
    fn hotspot_bounds(
        items in 100u64..100_000,
        hot_set in 0.05f64..0.95,
        hot_ops in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let mut dist = HotspotDist::new(items, hot_set, hot_ops);
        let mut rng = SimRng::new(seed);
        let hot_items = ((items as f64 * hot_set) as u64).max(1);
        let draws = 4_000;
        let mut hot_hits = 0u64;
        for _ in 0..draws {
            let k = dist.next_index(&mut rng);
            prop_assert!(k < items);
            if k < hot_items {
                hot_hits += 1;
            }
        }
        // Observed hot share within a generous tolerance of the target.
        let observed = hot_hits as f64 / draws as f64;
        prop_assert!(
            (observed - hot_ops).abs() < 0.1 + 1.5 * hot_set,
            "hot share {observed} for target {hot_ops}"
        );
    }

    /// Zipfian draws stay in range and the generator never panics across
    /// parameter space.
    #[test]
    fn zipfian_in_range(items in 2u64..50_000, theta in 0.1f64..0.99, seed in any::<u64>()) {
        let mut dist = ZipfianDist::with_theta(items, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..500 {
            prop_assert!(dist.next_index(&mut rng) < items);
        }
    }

    /// Exponential smoothing stays within the observed min/max envelope.
    #[test]
    fn smoothing_bounded_by_observations(
        alpha in 0.05f64..1.0,
        xs in prop::collection::vec(-1_000.0f64..1_000.0, 1..50),
    ) {
        let mut s = ExpSmoother::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
            let v = s.observe(x);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "smoothed {v} outside [{lo}, {hi}]");
        }
    }
}
