//! Cross-crate integration of the elasticity stack: MeT driving the
//! OpenStack-like cloud wrapper, tiramola in comparison, quotas, and the
//! scale-out / scale-in cycle of §6.4.

use baselines::{Tiramola, TiramolaConfig};
use cluster::admin::{AdminError, ElasticCluster};
use cluster::{ClientGroup, CostParams, OpMix, PartitionId, PartitionSpec, SimCluster};
use hstore::StoreConfig;
use iaas::{CloudCluster, Flavor, Quota};
use met::{Met, MetConfig};
use simcore::SimDuration;

fn overloadable_cloud(seed: u64, quota: usize) -> (CloudCluster, Vec<PartitionId>) {
    let mut sim = SimCluster::new(CostParams::default(), seed);
    let parts: Vec<PartitionId> = (0..8)
        .map(|_| {
            sim.create_partition(PartitionSpec {
                table: "t".into(),
                size_bytes: 2e9,
                record_bytes: 1_450.0,
                hot_set_fraction: 0.4,
                hot_ops_fraction: 0.5,
            })
        })
        .collect();
    let mut cloud = CloudCluster::new(
        sim,
        Flavor::paper_medium(),
        Quota { max_instances: quota },
        SimDuration::from_secs(45),
    );
    let servers = cloud
        .boot_initial_fleet(2, StoreConfig::default_homogeneous())
        .expect("quota covers fleet");
    for (i, p) in parts.iter().enumerate() {
        cloud.inner_mut().assign_partition(*p, servers[i % servers.len()]).expect("fresh");
    }
    let w = 1.0 / parts.len() as f64;
    cloud.inner_mut().add_group(ClientGroup::with_common_weights(
        "load",
        400.0,
        2.0,
        None,
        OpMix::new(0.6, 0.4, 0.0),
        parts.iter().map(|p| (*p, w)).collect(),
        1.0,
        0.05,
    ));
    (cloud, parts)
}

#[test]
fn met_scales_out_under_overload_and_back_in_when_idle() {
    let (mut cloud, _parts) = overloadable_cloud(1, 10);
    let cfg = MetConfig {
        min_nodes: 2,
        remove_cooldown: SimDuration::from_mins(2),
        ..MetConfig::default()
    };
    let mut met = Met::new(cfg, StoreConfig::default_homogeneous());
    for _ in 0..(20 * 60) {
        cloud.run_ticks(1);
        met.tick(&mut cloud);
    }
    let grown = cloud.inner().online_server_ids().len();
    assert!(grown > 2, "MeT never scaled out: {grown} nodes");
    assert!(met.actuator_stats().provisions > 0);

    // Kill the load; MeT must shed nodes down to its floor.
    cloud.inner_mut().set_group_active("load", false);
    for _ in 0..(25 * 60) {
        cloud.run_ticks(1);
        met.tick(&mut cloud);
    }
    let shrunk = cloud.inner().online_server_ids().len();
    assert!(shrunk < grown, "MeT never scaled in: {grown} → {shrunk}");
    assert!(shrunk >= 2, "MeT violated its min_nodes floor");
}

#[test]
fn quota_bounds_met_provisioning() {
    let (mut cloud, _parts) = overloadable_cloud(2, 3);
    let mut met = Met::new(MetConfig::default(), StoreConfig::default_homogeneous());
    for _ in 0..(15 * 60) {
        cloud.run_ticks(1);
        met.tick(&mut cloud);
    }
    assert!(cloud.active_vm_count() <= 3, "quota exceeded: {}", cloud.active_vm_count());
    // Direct provisioning past the quota is rejected with the IaaS error.
    let err = cloud.provision_server(StoreConfig::default_homogeneous());
    assert!(
        matches!(err, Err(AdminError::ProvisioningFailed(_))),
        "expected quota rejection, got {err:?}"
    );
}

#[test]
fn tiramola_only_shrinks_when_every_node_idles() {
    let (mut cloud, parts) = overloadable_cloud(3, 8);
    // Second group concentrated on one partition keeps one node busy.
    cloud.inner_mut().add_group(ClientGroup::with_common_weights(
        "hot",
        150.0,
        2.0,
        None,
        OpMix::read_only(),
        vec![(parts[0], 1.0)],
        1.0,
        0.0,
    ));
    let mut tiramola = Tiramola::new(TiramolaConfig::default(), StoreConfig::default_homogeneous());
    for _ in 0..(15 * 60) {
        cloud.run_ticks(1);
        tiramola.tick(&mut cloud);
    }
    // Turn off the broad load but keep the hot partition busy: tiramola
    // must NOT remove anything.
    cloud.inner_mut().set_group_active("load", false);
    let nodes_before = cloud.inner().online_server_ids().len();
    for _ in 0..(12 * 60) {
        cloud.run_ticks(1);
        tiramola.tick(&mut cloud);
    }
    assert_eq!(tiramola.removals(), 0, "tiramola removed despite a busy node");
    assert_eq!(cloud.inner().online_server_ids().len(), nodes_before);
}

#[test]
fn booting_vms_come_online_after_the_delay_and_serve() {
    let (mut cloud, parts) = overloadable_cloud(4, 10);
    let before = cloud.inner().online_server_ids().len();
    let id = cloud.provision_server(StoreConfig::default_homogeneous()).expect("quota ok");
    cloud.run_ticks(20);
    assert_eq!(
        cloud.inner().online_server_ids().len(),
        before,
        "VM served before its boot completed"
    );
    cloud.run_ticks(40);
    assert_eq!(cloud.inner().online_server_ids().len(), before + 1);
    // The new node can host partitions.
    cloud.move_partition(parts[0], id).expect("move onto booted VM");
    cloud.run_ticks(10);
    assert_eq!(cloud.inner().partition_server(parts[0]), Some(id));
    assert!(cloud.vm_of(id).is_some(), "VM bookkeeping lost the server");
}
