//! Cross-crate integration on the functional layer: real YCSB and TPC-C
//! traffic over real regions, with moves and splits in the loop.

use cluster::functional::FunctionalCluster;
use hstore::StoreConfig;
use tpcc::{loader, Table, TpccScale, TxnExecutor};
use ycsb::FunctionalClient;

fn small_db(servers: usize, seed: u64) -> FunctionalCluster {
    let mut db = FunctionalCluster::new(seed);
    for _ in 0..servers {
        db.add_server(StoreConfig::small_for_tests()).expect("valid config");
    }
    db
}

#[test]
fn ycsb_workloads_survive_region_moves() {
    let mut db = small_db(3, 1);
    let mut spec = ycsb::presets::workload_a();
    spec.records = 3_000;
    spec.field_count = 2;
    spec.field_bytes = 16;
    let mut client = FunctionalClient::new(spec.clone(), 1);
    client.load(&mut db, None).expect("load");
    client.run_ops(&mut db, 1_000).expect("warm-up traffic");

    // Move every region of the table to a different server mid-workload.
    let servers = db.server_ids();
    for rid in db.table_regions(&spec.table) {
        let from = db.region_server(rid).expect("assigned");
        let to = *servers.iter().find(|s| **s != from).expect("another server");
        db.move_region(rid, to).expect("move");
    }
    let stats = client.run_ops(&mut db, 1_000).expect("post-move traffic");
    // Reads of loaded keys hit before and after the moves.
    assert_eq!(stats.reads, stats.read_hits, "moves lost data: {stats:?}");
}

#[test]
fn insert_heavy_workload_triggers_real_splits() {
    let mut db = small_db(2, 2);
    let mut spec = ycsb::presets::workload_d();
    spec.records = 200;
    spec.field_count = 1;
    spec.field_bytes = 2_000; // fat rows so the 4 MiB split threshold trips
    let mut client = FunctionalClient::new(spec.clone(), 2);
    client.load(&mut db, None).expect("load");
    let before = db.table_regions(&spec.table).len();
    for _ in 0..6 {
        client.run_ops(&mut db, 500).expect("inserts");
        db.maintenance();
    }
    let after = db.table_regions(&spec.table).len();
    assert!(after > before, "no splits despite growth: {before} → {after}");
    // Everything remains readable through the new region map.
    let stats = client.run_ops(&mut db, 200).expect("traffic after splits");
    assert!(stats.total_ops() >= 200);
}

#[test]
fn tpcc_new_orders_are_deliverable_end_to_end() {
    let mut db = small_db(3, 3);
    let scale = TpccScale::tiny();
    loader::load(&mut db, &scale, 3).expect("load");
    let mut exec = TxnExecutor::new(scale, 3);

    // Enter a batch of new orders, then deliver until the backlog drains.
    for _ in 0..20 {
        exec.new_order(&mut db).expect("new order");
    }
    let fam = Table::family();
    let backlog = |db: &mut FunctionalCluster| {
        db.scan(Table::NewOrder.name(), &fam, &tpcc::schema::keys::new_order(1, 1, 0), 10_000)
            .expect("scan")
            .len()
    };
    let before = backlog(&mut db);
    assert!(before >= 20, "new orders not enqueued: {before}");
    for _ in 0..60 {
        exec.delivery(&mut db).expect("delivery");
    }
    let after = backlog(&mut db);
    assert!(after < before, "deliveries consumed nothing: {before} → {after}");
}

#[test]
fn per_region_counters_feed_classification_correctly() {
    // The functional layer's counters drive the same classifier MeT uses.
    let mut db = small_db(2, 4);
    let mut spec = ycsb::presets::workload_c();
    spec.records = 2_000;
    spec.field_count = 1;
    spec.field_bytes = 8;
    let mut client = FunctionalClient::new(spec.clone(), 4);
    client.load(&mut db, None).expect("load");
    client.run_ops(&mut db, 2_000).expect("traffic");
    for rid in db.table_regions(&spec.table) {
        let c = db.region_counters(rid).expect("counters");
        let kind = met::classify(
            met::PartitionRates {
                reads: c.reads as f64,
                writes: 0.0, // loading wrote, but classify on the serving window
                scans: c.scans as f64,
            },
            0.6,
        );
        assert_eq!(kind, met::ProfileKind::Read, "C region classified {kind}");
    }
}

#[test]
fn met_manages_the_functional_cluster_end_to_end() {
    use cluster::admin::ElasticCluster;
    use cluster::FunctionalElastic;
    use met::{Met, MetConfig, ProfileKind};
    use simcore::SimDuration;

    // Three servers, two real workloads: a read-only table and a
    // write-only table, each pre-split.
    let mut db = small_db(3, 9);
    let mut read_spec = ycsb::presets::workload_c();
    read_spec.records = 2_000;
    read_spec.field_count = 1;
    read_spec.field_bytes = 8;
    let mut write_spec = ycsb::presets::workload_b();
    write_spec.records = 2_000;
    write_spec.field_count = 1;
    write_spec.field_bytes = 8;
    let mut readers = FunctionalClient::new(read_spec.clone(), 9);
    let mut writers = FunctionalClient::new(write_spec.clone(), 9);
    readers.load(&mut db, None).expect("load C");
    writers.load(&mut db, None).expect("load B");

    let mut fe = FunctionalElastic::new(db, 100_000.0);
    let cfg = MetConfig {
        allow_scaling: false,
        min_samples: 2,
        monitor_interval: SimDuration::from_secs(30),
        ..MetConfig::default()
    };
    let mut met = Met::new(cfg, StoreConfig::small_for_tests());

    // Interleave real traffic with monitoring intervals until MeT acts.
    for _ in 0..24 {
        readers.run_ops(fe.db(), 400).expect("reads");
        writers.run_ops(fe.db(), 400).expect("writes");
        fe.advance(SimDuration::from_secs(30));
        met.tick(&mut fe);
        // The actuator may need extra ticks to finish its plan.
        for _ in 0..4 {
            met.tick(&mut fe);
        }
    }
    assert!(met.reconfigurations() >= 1, "MeT never acted on real regions: {:?}", met.events());

    // The REAL regions of the read table now live on Read-profile servers,
    // the write table's on Write-profile servers.
    let snap = fe.snapshot();
    let profile_of_region = |rid: u64| {
        let m = snap.partitions.iter().find(|p| p.partition.0 == rid).expect("region known");
        let sid = m.assigned_to.expect("assigned");
        ProfileKind::of_config(&snap.server(sid).expect("server").config)
    };
    for rid in fe.db_ref().table_regions(&read_spec.table) {
        assert_eq!(
            profile_of_region(rid.0),
            Some(ProfileKind::Read),
            "read region {rid} not on a read node"
        );
    }
    for rid in fe.db_ref().table_regions(&write_spec.table) {
        assert_eq!(
            profile_of_region(rid.0),
            Some(ProfileKind::Write),
            "write region {rid} not on a write node"
        );
    }
    // And the data is still fully readable after all the real moves and
    // rebuilds MeT performed.
    let stats = readers.run_ops(fe.db(), 500).expect("post-reconfig reads");
    assert_eq!(stats.reads, stats.read_hits, "reconfiguration lost data");
}
