//! Property-based tests of the fault-injection layer and MeT's
//! self-healing: any seeded, bounded-rate fault plan must leave the
//! control plane in a stable, fully assigned state within a bounded
//! number of decision rounds after the last fault.

use cluster::{ClientGroup, CostParams, OpMix, PartitionId, PartitionSpec, SimCluster};
use hstore::StoreConfig;
use met::{Met, MetConfig};
use proptest::prelude::*;
use simcore::{FaultPlan, RandomFaultConfig, SimDuration};
use std::collections::BTreeSet;

/// The §3 scenario in miniature: read, write and mixed tenants over 12
/// partitions on a 4-node homogeneous cluster.
fn build_scenario(seed: u64) -> SimCluster {
    let mut sim = SimCluster::new(CostParams::default(), seed);
    for _ in 0..4 {
        sim.add_server_immediate(StoreConfig::default_homogeneous());
    }
    let mut parts = Vec::new();
    for _ in 0..12 {
        parts.push(sim.create_partition(PartitionSpec {
            table: "t".into(),
            size_bytes: 1e9,
            record_bytes: 1_000.0,
            hot_set_fraction: 0.4,
            hot_ops_fraction: 0.5,
        }));
    }
    sim.random_balance_unassigned();
    let third = |offset: usize| -> Vec<(PartitionId, f64)> {
        (0..4).map(|i| (parts[offset + i], 0.25)).collect()
    };
    sim.add_group(ClientGroup::with_common_weights(
        "readers",
        60.0,
        0.5,
        None,
        OpMix::read_only(),
        third(0),
        1.0,
        0.0,
    ));
    sim.add_group(ClientGroup::with_common_weights(
        "writers",
        60.0,
        0.5,
        None,
        OpMix::write_only(),
        third(4),
        1.0,
        0.2,
    ));
    sim.add_group(ClientGroup::with_common_weights(
        "mixed",
        60.0,
        0.5,
        None,
        OpMix::new(0.5, 0.5, 0.0),
        third(8),
        1.0,
        0.0,
    ));
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Stability under chaos: every fault in a bounded-rate random plan
    /// fires inside a 10-minute window; three decision rounds later
    /// (min_samples × monitor_interval = 3 minutes each) the actuator is
    /// idle, every partition lives on an online server, and the layout no
    /// longer changes.
    #[test]
    fn bounded_fault_plans_stabilize_within_three_decision_rounds(
        seed in 0u64..1_000_000,
        faults in 1usize..5,
        allow_crashes in any::<bool>(),
    ) {
        let plan = FaultPlan::random(seed, &RandomFaultConfig {
            horizon: SimDuration::from_mins(10),
            warmup: SimDuration::from_mins(2),
            faults,
            allow_crashes,
            disk_faults: false,
        });
        let injector = plan.injector();
        let mut sim = build_scenario(seed);
        sim.set_fault_injector(injector.clone());
        sim.set_provision_delay(SimDuration::from_secs(30));
        let mut met = Met::new(
            MetConfig { allow_scaling: false, ..MetConfig::default() },
            StoreConfig::default_homogeneous(),
        );
        met.set_fault_injector(injector);

        // The 10-minute fault window plus three decision rounds.
        for _ in 0..(19 * 60) {
            sim.step();
            met.tick(&mut sim);
        }
        prop_assert!(
            !met.reconfiguring(),
            "actuator still busy 9 minutes after the last fault: {:?}",
            met.events()
        );

        // Stable: another decision round changes nothing structural.
        let before = cluster::ElasticCluster::snapshot(&sim);
        let layout_of = |snap: &cluster::ClusterSnapshot| -> Vec<(u64, Option<u64>)> {
            snap.partitions.iter().map(|p| (p.partition.0, p.assigned_to.map(|s| s.0))).collect()
        };
        let before_layout = layout_of(&before);
        for _ in 0..(3 * 60) {
            sim.step();
            met.tick(&mut sim);
        }
        let after = cluster::ElasticCluster::snapshot(&sim);
        prop_assert_eq!(
            before_layout,
            layout_of(&after),
            "placement still churning after convergence"
        );

        // Fully assigned: every partition on an online server.
        let online: BTreeSet<_> = after.online_servers().into_iter().collect();
        prop_assert!(!online.is_empty(), "fleet wiped out");
        for p in &after.partitions {
            prop_assert!(p.assigned_to.is_some(), "partition {} unassigned", p.partition.0);
            let s = p.assigned_to.expect("checked above");
            prop_assert!(
                online.contains(&s),
                "partition {} stranded on dead server {s}: {:?}",
                p.partition.0,
                met.events()
            );
        }

        // Crashes were repaired: the fleet is back at full strength.
        if allow_crashes {
            prop_assert!(online.len() >= 3, "crashed nodes not replaced: {:?}", met.events());
        } else {
            prop_assert_eq!(online.len(), 4);
        }
    }
}
